// hyppo_lint: standalone invariant checker for serialized HYPPO catalogs
// and (via --pipeline) for DSL pipeline sources before anything executes.
//
// Catalog mode loads `<catalog-dir>/history.hyppo` (written by
// Runtime::SaveCatalog or core::SerializeHistory) and runs the full
// analysis verifier over it: hypergraph well-formedness, label
// consistency, canonical-name closure, materialization flags,
// serialization round-trip, and — when a budget is given — storage-budget
// compliance. Also cross-checks that every materialized artifact has its
// payload file on disk. Durable store directories (store.manifest +
// payloads/, written with --store-dir / RuntimeOptions::store_dir) get
// the full history<->store consistency audit instead of the per-file
// check.
//
// Pipeline mode (--pipeline <dsl-file>) parses the DSL source and runs
// the static analyzer passes over it: shape & schema inference,
// determinism lint, and the equivalence soundness audit of the built-in
// operator catalog — the same passes the Runtime applies at submit time.
//
// Sweep mode (--sweep <n>) generates the canonical n-config demo sweep
// (workload::SweepGenerator::DemoSweep — the grid quickstart --sweep
// batch-executes) and runs the static analyzer over every member
// pipeline. Diagnostics identical across members — the ones rooted in
// the shared preprocessing prefix — are deduplicated and reported once,
// annotated with the number of affected configs, so a trunk problem
// reads as one finding instead of n copies.
//
// Usage:
//   hyppo_lint <catalog-dir | history-file> [options]
//   hyppo_lint --pipeline <dsl-file> [options]
//   hyppo_lint --sweep <n> [options]
//     --budget <bytes>   also enforce the storage budget (catalog mode)
//     --no-roundtrip     skip the serialize/deserialize round-trip check
//     --quiet            print only the summary line
//     --json             emit machine-readable JSON diagnostics on stdout
//
// Exit-code contract (stable, CI gates on it):
//   0  clean — no error-severity diagnostics (warnings allowed)
//   1  one or more error-severity diagnostics found
//   2  usage error, unreadable input, or unparseable history file

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/json_diagnostics.h"
#include "analysis/static/static_analyzer.h"
#include "analysis/verifier.h"
#include "core/history_io.h"
#include "core/parser.h"
#include "ml/registry.h"
#include "storage/disk_store.h"
#include "workload/sweep_generator.h"

namespace {

namespace fs = std::filesystem;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <catalog-dir | history-file> "
               "[--budget <bytes>] [--no-roundtrip] [--quiet] [--json]\n"
               "       %s --pipeline <dsl-file> [--quiet] [--json]\n"
               "       %s --sweep <n> [--quiet] [--json]\n"
               "exit codes: 0 clean (warnings allowed), 1 errors found, "
               "2 usage/IO\n",
               argv0, argv0, argv0);
  return 2;
}

hyppo::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return hyppo::Status::IoError("cannot open '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return hyppo::Status::IoError("error while reading '" + path + "'");
  }
  return bytes;
}

// Prints the report (text or JSON) and maps it onto the exit contract.
int Finish(const hyppo::analysis::AnalysisReport& report,
           const std::string& target, const std::string& detail, bool quiet,
           bool json) {
  if (json) {
    std::fputs(hyppo::analysis::ReportToJson(report, target).c_str(), stdout);
  } else {
    if (!quiet && !report.diagnostics().empty()) {
      std::fputs(report.ToString().c_str(), stdout);
    }
    std::printf("%s: %s%s\n", target.c_str(), detail.c_str(),
                report.Summary().c_str());
  }
  return report.ok() ? 0 : 1;
}

// Parses "line N, col M:" / "line N:" prefixes out of a parser error
// message so the diagnostic keeps its source location in the JSON output.
void LocateParseError(const std::string& message,
                      hyppo::analysis::Diagnostic& d) {
  int line = 0;
  int col = 0;
  if (std::sscanf(message.c_str(), "PARSE_ERROR: line %d, col %d", &line,
                  &col) == 2 ||
      std::sscanf(message.c_str(), "line %d, col %d", &line, &col) == 2 ||
      std::sscanf(message.c_str(), "PARSE_ERROR: line %d", &line) == 1 ||
      std::sscanf(message.c_str(), "line %d", &line) == 1) {
    d.line = line;
    d.column = col;
  }
}

int LintPipeline(const std::string& path, bool quiet, bool json) {
  hyppo::Result<std::string> source = ReadFile(path);
  if (!source.ok()) {
    std::fprintf(stderr, "hyppo_lint: %s\n",
                 source.status().ToString().c_str());
    return 2;
  }
  const hyppo::ml::OperatorRegistry& registry =
      hyppo::ml::OperatorRegistry::Global();
  const hyppo::core::Dictionary dictionary =
      hyppo::core::Dictionary::FromRegistry(registry);
  hyppo::analysis::AnalysisReport report;
  hyppo::Result<hyppo::core::Pipeline> pipeline =
      hyppo::core::ParsePipeline(*source, fs::path(path).stem().string(),
                                 dictionary);
  if (!pipeline.ok()) {
    hyppo::analysis::Diagnostic d;
    d.severity = hyppo::analysis::Severity::kError;
    d.check = "pipeline.parse-error";
    d.message = pipeline.status().ToString();
    LocateParseError(pipeline.status().message(), d);
    report.Add(std::move(d));
    return Finish(report, path, "", quiet, json);
  }
  const hyppo::analysis::StaticAnalyzer analyzer;
  report.Merge(analyzer.AnalyzePipeline(pipeline->graph, dictionary,
                                        registry));
  report.Merge(analyzer.CheckCatalog(dictionary, registry));
  const std::string detail =
      std::to_string(pipeline->graph.num_artifacts()) + " artifacts, " +
      std::to_string(pipeline->graph.num_tasks()) + " tasks: ";
  return Finish(report, path, detail, quiet, json);
}

// A diagnostic's identity for cross-config dedup: everything except which
// sweep member produced it. Members share node/edge ids for the common
// prefix (same builder, same trunk), so a trunk diagnostic is bitwise
// identical across configs and folds to one entry; a config-specific
// diagnostic (distinct message or entity) stays separate.
using DiagnosticKey =
    std::tuple<hyppo::analysis::Severity, std::string,
               hyppo::analysis::EntityKind, int64_t, int, int, std::string>;

DiagnosticKey KeyOf(const hyppo::analysis::Diagnostic& d) {
  return {d.severity, d.check, d.entity, d.entity_id, d.line, d.column,
          d.message};
}

int LintSweep(int num_configs, bool quiet, bool json) {
  namespace workload = hyppo::workload;
  constexpr double kScale = 0.005;  // static analysis only; never executed
  workload::SweepGenerator generator(workload::UseCase::Higgs(), kScale,
                                     /*seed=*/11);
  hyppo::Result<workload::SweepWorkload> sweep =
      generator.DemoSweep(num_configs, "lint-sweep");
  if (!sweep.ok()) {
    std::fprintf(stderr, "hyppo_lint: cannot generate sweep: %s\n",
                 sweep.status().ToString().c_str());
    return 2;
  }
  const hyppo::ml::OperatorRegistry& registry =
      hyppo::ml::OperatorRegistry::Global();
  const hyppo::core::Dictionary dictionary =
      hyppo::core::Dictionary::FromRegistry(registry);
  const hyppo::analysis::StaticAnalyzer analyzer;

  // Analyze every member, folding identical diagnostics (the shared
  // prefix produces the same finding in every config) into one entry
  // with an affected-config count.
  struct Folded {
    hyppo::analysis::Diagnostic diagnostic;
    int configs = 0;
  };
  std::map<DiagnosticKey, Folded> folded;
  int64_t raw_diagnostics = 0;
  for (const hyppo::core::Pipeline& member : sweep->pipelines) {
    hyppo::analysis::AnalysisReport member_report =
        analyzer.AnalyzePipeline(member.graph, dictionary, registry);
    for (const hyppo::analysis::Diagnostic& d : member_report.diagnostics()) {
      ++raw_diagnostics;
      Folded& entry = folded[KeyOf(d)];
      if (entry.configs == 0) {
        entry.diagnostic = d;
      }
      ++entry.configs;
    }
  }

  hyppo::analysis::AnalysisReport report;
  const int total = static_cast<int>(sweep->pipelines.size());
  for (auto& [key, entry] : folded) {
    hyppo::analysis::Diagnostic d = std::move(entry.diagnostic);
    d.message += " [affects " + std::to_string(entry.configs) + "/" +
                 std::to_string(total) + " sweep configs]";
    report.Add(std::move(d));
  }
  // The catalog audit is config-independent: run it once, not per member.
  report.Merge(analyzer.CheckCatalog(dictionary, registry));

  if (!quiet && !json) {
    const workload::PipelineSpec base = generator.DemoBaseSpec();
    std::printf("sweep: %d configs over base model %s (%lld distinct "
                "prefixes, %lld mergeable tasks)\n",
                total, base.model.impl.c_str(),
                static_cast<long long>(sweep->distinct_prefixes),
                static_cast<long long>(sweep->expected_merged_tasks));
    for (const workload::SweepAxis& axis :
         generator.DemoAxes(num_configs)) {
      std::printf("  axis %s: %zu values\n", axis.param.c_str(),
                  axis.values.size());
    }
  }
  const std::string detail =
      std::to_string(total) + " configs, " +
      std::to_string(raw_diagnostics) + " raw diagnostics folded to " +
      std::to_string(folded.size()) + ": ";
  return Finish(report, "sweep(" + std::to_string(num_configs) + ")", detail,
                quiet, json);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  std::string target;
  std::string pipeline_path;
  int sweep_configs = 0;
  int64_t budget_bytes = -1;
  bool roundtrip = true;
  bool quiet = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipeline") == 0 && i + 1 < argc) {
      pipeline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_configs = std::atoi(argv[++i]);
      if (sweep_configs < 1) {
        std::fprintf(stderr, "hyppo_lint: invalid --sweep value '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_bytes = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-roundtrip") == 0) {
      roundtrip = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (target.empty()) {
      target = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (!pipeline_path.empty() || sweep_configs > 0) {
    if (!target.empty() || (!pipeline_path.empty() && sweep_configs > 0)) {
      return Usage(argv[0]);
    }
    return sweep_configs > 0 ? LintSweep(sweep_configs, quiet, json)
                             : LintPipeline(pipeline_path, quiet, json);
  }
  if (target.empty()) {
    return Usage(argv[0]);
  }

  // Accept a catalog directory (artifacts/<name>.bin layout), a durable
  // store directory (store.manifest + payloads/, written by the tiered
  // disk store), or a bare history file.
  std::string history_path = target;
  std::string artifacts_dir;
  bool is_store_dir = false;
  if (fs::is_directory(history_path)) {
    is_store_dir = fs::exists(fs::path(target) / "store.manifest");
    if (!is_store_dir) {
      artifacts_dir = (fs::path(target) / "artifacts").string();
    }
    history_path = (fs::path(target) / "history.hyppo").string();
  }
  hyppo::Result<std::string> bytes = ReadFile(history_path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "hyppo_lint: %s\n",
                 bytes.status().ToString().c_str());
    return 2;
  }
  hyppo::Result<hyppo::core::History> history =
      hyppo::core::DeserializeHistory(*bytes);
  if (!history.ok()) {
    std::fprintf(stderr, "hyppo_lint: cannot parse '%s': %s\n",
                 history_path.c_str(), history.status().ToString().c_str());
    return 2;
  }

  hyppo::analysis::Verifier::Options options;
  options.check_roundtrip = roundtrip;
  const hyppo::analysis::Verifier verifier(options);
  const hyppo::core::Dictionary dictionary =
      hyppo::core::Dictionary::FromRegistry(
          hyppo::ml::OperatorRegistry::Global());
  hyppo::analysis::AnalysisReport report =
      verifier.VerifyHistory(*history, &dictionary, budget_bytes);

  // Equivalence soundness audit: the catalog the history will be planned
  // against must be internally consistent.
  const hyppo::analysis::StaticAnalyzer analyzer;
  report.Merge(analyzer.CheckCatalog(dictionary,
                                     hyppo::ml::OperatorRegistry::Global()));

  // Store-dir layout: open the disk store (recovering its manifest) and
  // run the full history<->store consistency check — entry presence,
  // charged-size agreement, orphans, and used_bytes accounting.
  if (is_store_dir) {
    hyppo::storage::DiskArtifactStore store(target);
    if (!store.init_status().ok()) {
      std::fprintf(stderr, "hyppo_lint: cannot open store '%s': %s\n",
                   target.c_str(),
                   store.init_status().ToString().c_str());
      return 2;
    }
    report.Merge(verifier.CheckStoreConsistency(*history, store));
  }

  // Catalog-level check: a materialized artifact without its payload file
  // cannot actually be loaded by a plan.
  if (!artifacts_dir.empty()) {
    for (hyppo::NodeId v : history->MaterializedArtifacts()) {
      const std::string& name = history->graph().artifact(v).name;
      if (!fs::exists(fs::path(artifacts_dir) / (name + ".bin"))) {
        report.AddError("catalog.missing-payload",
                        "materialized artifact '" + name +
                            "' has no payload file under " + artifacts_dir,
                        hyppo::analysis::EntityKind::kNode, v);
      }
    }
  }

  const std::string detail = std::to_string(history->num_artifacts()) +
                             " artifacts, " +
                             std::to_string(history->num_tasks()) +
                             " tasks: ";
  return Finish(report, history_path, detail, quiet, json);
}
