// Micro-benchmark of the ml/kernels compute layer: scalar reference vs
// cache-blocked vs explicitly vectorized (simd) vs thread-parallel
// dispatch for GEMM, GEMV, covariance (shifted SYRK), and pairwise
// squared distances, at several shapes.
//
// Every timed variant is also checked against the scalar reference with a
// max-abs-diff bound (the cross-tier equivalence gate), and each tier's
// dispatch is checked bitwise for dispatch(1 thread) == dispatch(8
// threads); a violation exits non-zero, so this binary doubles as the CI
// smoke check for the kernel layer. Pass `--json [<path>]` to dump the
// measurements (bench/BENCH_kernels.json is a committed snapshot).
//
// The simd columns appear only when the build's simd tier can run here
// (kernels::SimdEnabled() — cpuid probe plus the HYPPO_SIMD override, so
// HYPPO_SIMD=off exercises the blocked-only configuration). The parallel
// columns only show scaling when the machine actually has cores
// available; on single-core runners they match the serial tier (the
// dispatch layer degrades to the serial path), and the determinism
// contract guarantees identical numeric results either way.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "ml/kernels/kernels.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
namespace kernels = hyppo::ml::kernels;

struct Shape {
  int64_t rows = 0;  // data rows (GEMM: m)
  int64_t cols = 0;  // data columns (GEMM: k)
  int64_t k = 0;     // centers / output columns (GEMM: n)
};

// Repeats `fn` until ~0.1s elapsed and returns seconds per call.
double TimeIt(const std::function<void()>& fn) {
  const WallClock clock;
  fn();  // warm-up
  int reps = 1;
  double elapsed = 0.0;
  for (;;) {
    Stopwatch watch(clock);
    for (int i = 0; i < reps; ++i) {
      fn();
    }
    elapsed = watch.Elapsed();
    if (elapsed > 0.1 || reps > (1 << 20)) {
      break;
    }
    reps *= 2;
  }
  return elapsed / reps;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

bool g_equivalence_ok = true;

void CheckEquivalence(const std::string& label, double max_diff,
                      double bound) {
  if (max_diff > bound) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: %s max_abs_diff %.3e > bound %.3e\n",
                 label.c_str(), max_diff, bound);
    g_equivalence_ok = false;
  }
}

struct Variant {
  std::string name;
  std::function<void()> run;
  const std::vector<double>* out;
};

// Per-tier bitwise determinism gate: runs the dispatcher at 1 and at 8
// threads into the same buffer and requires identical bytes — the
// dispatch(1)==dispatch(N) contract the differential/chaos/serving
// suites rely on, checked here for whichever tier dispatch picks under
// `base` (allow_simd toggles the tier).
void CheckDispatchBitwise(
    const std::string& label, const kernels::KernelOptions& base,
    const std::function<void(const kernels::KernelOptions*)>& run,
    std::vector<double>* out) {
  kernels::KernelOptions opts = base;
  opts.num_threads = 1;
  run(&opts);
  const std::vector<double> serial = *out;
  opts.num_threads = 8;
  run(&opts);
  if (std::memcmp(serial.data(), out->data(),
                  serial.size() * sizeof(double)) != 0) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: %s dispatch(1) != dispatch(8) "
                 "bitwise\n",
                 label.c_str());
    g_equivalence_ok = false;
  }
}

// Times every variant, checks it against the first (the scalar
// reference), prints a table row per variant, and appends JSON rows.
void RunCase(const std::string& kernel, const Shape& shape, double flops,
             const std::vector<Variant>& variants, double bound, Table& table,
             JsonWriter& json) {
  const std::string shape_str = std::to_string(shape.rows) + "x" +
                                std::to_string(shape.cols) +
                                (shape.k > 0 ? "x" + std::to_string(shape.k)
                                             : std::string());
  double ref_seconds = 0.0;
  for (size_t v = 0; v < variants.size(); ++v) {
    const Variant& variant = variants[v];
    const double seconds = TimeIt(variant.run);
    if (v == 0) {
      ref_seconds = seconds;
    }
    const double max_diff =
        v == 0 ? 0.0 : MaxAbsDiff(*variants[0].out, *variant.out);
    if (v > 0) {
      CheckEquivalence(kernel + "/" + shape_str + "/" + variant.name,
                       max_diff, bound);
    }
    const double gflops = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
    if (gflops <= 0.0) {
      std::fprintf(stderr, "EQUIVALENCE FAILURE: %s/%s/%s zero throughput\n",
                   kernel.c_str(), shape_str.c_str(), variant.name.c_str());
      g_equivalence_ok = false;
    }
    table.AddRow({kernel, shape_str, variant.name,
                  FormatDouble(seconds * 1e3, 3) + " ms",
                  FormatDouble(gflops, 2), Speedup(ref_seconds, seconds),
                  FormatDouble(max_diff, 3)});
    json.AddRow(kernel)
        .Set("shape", shape_str)
        .Set("variant", variant.name)
        .Set("seconds", seconds)
        .Set("gflops", gflops)
        .Set("speedup_vs_scalar", seconds > 0.0 ? ref_seconds / seconds : 0.0)
        .Set("max_abs_diff", max_diff);
  }
}

std::vector<double> RandomVector(size_t n, Rng& rng) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = rng.Gaussian();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Banner("Kernel micro-benchmarks: scalar vs blocked vs simd vs parallel",
         "ml/kernels dispatch layer (docs/KERNELS.md)");

  const bool simd_on = kernels::SimdEnabled();
  std::printf(
      "simd tier: build=%s backend=%s runtime_supported=%s enabled=%s\n\n",
      kernels::SimdBuildIsa(), kernels::simd::BackendName(),
      kernels::SimdRuntimeSupported() ? "yes" : "no",
      simd_on ? "yes" : "no (simd columns skipped)");

  const Scale scale = BenchScale();
  // GEMM shapes (m x k x n). The 512-cube is the headline shape the
  // blocked path must beat scalar on by >= 3x single-threaded.
  std::vector<Shape> gemm_shapes;
  std::vector<Shape> data_shapes;  // rows x cols (x centers) for the rest
  switch (scale) {
    case Scale::kSmoke:
      gemm_shapes = {{96, 96, 96}, {192, 64, 48}};
      data_shapes = {{2048, 16, 8}, {1024, 32, 4}};
      break;
    case Scale::kFull:
      gemm_shapes = {{256, 256, 256}, {512, 512, 512}, {1024, 1024, 1024}};
      data_shapes = {{200000, 28, 8}, {100000, 64, 16}, {400000, 16, 32}};
      break;
    case Scale::kReduced:
      gemm_shapes = {{256, 256, 256}, {512, 512, 512}};
      data_shapes = {{50000, 28, 8}, {100000, 16, 16}};
      break;
  }

  // parallel8 pins the blocked tier (allow_simd = false) so the column
  // stays comparable across simd configurations; simd_parallel8 is the
  // full dispatch path (simd tier + thread split).
  kernels::KernelOptions parallel_opts;
  parallel_opts.num_threads = 8;
  parallel_opts.allow_simd = false;
  kernels::KernelOptions simd_parallel_opts;
  simd_parallel_opts.num_threads = 8;

  Table table({"kernel", "shape", "variant", "time", "GFLOP/s",
               "vs scalar", "max|diff|"});
  JsonWriter json("bench_micro_kernels");
  Rng rng(42);

  // GEMM throughputs at the headline 512-cube, for the closing summary.
  double gemm512_blocked_gflops = 0.0;
  double gemm512_simd_gflops = 0.0;

  for (const Shape& shape : gemm_shapes) {
    const int64_t m = shape.rows;
    const int64_t k = shape.cols;
    const int64_t n = shape.k;
    const std::vector<double> a = RandomVector(static_cast<size_t>(m * k), rng);
    const std::vector<double> b = RandomVector(static_cast<size_t>(k * n), rng);
    std::vector<double> c_ref(static_cast<size_t>(m * n));
    std::vector<double> c_blocked(static_cast<size_t>(m * n));
    std::vector<double> c_simd(static_cast<size_t>(m * n));
    std::vector<double> c_parallel(static_cast<size_t>(m * n));
    const double flops = 2.0 * static_cast<double>(m * k * n);
    std::vector<Variant> variants = {
        {"scalar",
         [&]() { kernels::ref::Gemm(a.data(), b.data(), c_ref.data(), m, k,
                                    n); },
         &c_ref},
        {"blocked",
         [&]() { kernels::blocked::Gemm(a.data(), b.data(), c_blocked.data(),
                                        m, k, n); },
         &c_blocked},
        {"parallel8",
         [&]() { kernels::Gemm(a.data(), b.data(), c_parallel.data(), m, k,
                               n, &parallel_opts); },
         &c_parallel}};
    if (simd_on) {
      variants.push_back(
          {"simd",
           [&]() { kernels::simd::Gemm(a.data(), b.data(), c_simd.data(), m,
                                       k, n); },
           &c_simd});
      variants.push_back(
          {"simd_parallel8",
           [&]() { kernels::Gemm(a.data(), b.data(), c_parallel.data(), m, k,
                                 n, &simd_parallel_opts); },
           &c_parallel});
    }
    RunCase("gemm", shape, flops, variants, 1e-9 * static_cast<double>(k),
            table, json);
    if (m == 512 && k == 512 && n == 512) {
      gemm512_blocked_gflops = flops / TimeIt(variants[1].run) / 1e9;
      if (simd_on) {
        gemm512_simd_gflops = flops / TimeIt(variants[3].run) / 1e9;
      }
    }
    const std::string shape_str = std::to_string(m) + "x" +
                                  std::to_string(k) + "x" + std::to_string(n);
    const auto dispatch_gemm = [&](const kernels::KernelOptions* o) {
      kernels::Gemm(a.data(), b.data(), c_parallel.data(), m, k, n, o);
    };
    CheckDispatchBitwise("gemm/" + shape_str + "/blocked", parallel_opts,
                         dispatch_gemm, &c_parallel);
    if (simd_on) {
      CheckDispatchBitwise("gemm/" + shape_str + "/simd", simd_parallel_opts,
                           dispatch_gemm, &c_parallel);
    }
  }

  for (const Shape& shape : data_shapes) {
    const int64_t rows = shape.rows;
    const int64_t d = shape.cols;
    const int64_t k = shape.k;
    const std::vector<double> values =
        RandomVector(static_cast<size_t>(rows * d), rng);
    std::vector<const double*> cols(static_cast<size_t>(d));
    for (int64_t c = 0; c < d; ++c) {
      cols[static_cast<size_t>(c)] = values.data() + c * rows;
    }
    const std::vector<double> weights = RandomVector(static_cast<size_t>(d),
                                                     rng);
    const std::vector<double> shiftv = RandomVector(static_cast<size_t>(d),
                                                    rng);
    const std::vector<double> centers =
        RandomVector(static_cast<size_t>(k * d), rng);

    {
      std::vector<double> y_ref(static_cast<size_t>(rows));
      std::vector<double> y_blocked(static_cast<size_t>(rows));
      std::vector<double> y_simd(static_cast<size_t>(rows));
      std::vector<double> y_parallel(static_cast<size_t>(rows));
      Shape gemv_shape{rows, d, 0};
      std::vector<Variant> variants = {
          {"scalar",
           [&]() { kernels::ref::GemvColumns(cols.data(), rows, d,
                                             shiftv.data(), weights.data(),
                                             0.5, y_ref.data()); },
           &y_ref},
          {"blocked",
           [&]() { kernels::blocked::GemvColumns(cols.data(), rows, d,
                                                 shiftv.data(),
                                                 weights.data(), 0.5,
                                                 y_blocked.data()); },
           &y_blocked},
          {"parallel8",
           [&]() { kernels::GemvColumns(cols.data(), rows, d, shiftv.data(),
                                        weights.data(), 0.5,
                                        y_parallel.data(), &parallel_opts); },
           &y_parallel}};
      if (simd_on) {
        variants.push_back(
            {"simd",
             [&]() { kernels::simd::GemvColumns(cols.data(), rows, d,
                                                shiftv.data(),
                                                weights.data(), 0.5,
                                                y_simd.data()); },
             &y_simd});
        variants.push_back(
            {"simd_parallel8",
             [&]() { kernels::GemvColumns(cols.data(), rows, d,
                                          shiftv.data(), weights.data(), 0.5,
                                          y_parallel.data(),
                                          &simd_parallel_opts); },
             &y_parallel});
      }
      RunCase("gemv_columns", gemv_shape, 2.0 * static_cast<double>(rows * d),
              variants, 1e-10 * static_cast<double>(d), table, json);
      const std::string shape_str =
          std::to_string(rows) + "x" + std::to_string(d);
      const auto dispatch_gemv = [&](const kernels::KernelOptions* o) {
        kernels::GemvColumns(cols.data(), rows, d, shiftv.data(),
                             weights.data(), 0.5, y_parallel.data(), o);
      };
      CheckDispatchBitwise("gemv_columns/" + shape_str + "/blocked",
                           parallel_opts, dispatch_gemv, &y_parallel);
      if (simd_on) {
        CheckDispatchBitwise("gemv_columns/" + shape_str + "/simd",
                             simd_parallel_opts, dispatch_gemv, &y_parallel);
      }
    }

    {
      std::vector<double> g_ref(static_cast<size_t>(d * d));
      std::vector<double> g_blocked(static_cast<size_t>(d * d));
      std::vector<double> g_simd(static_cast<size_t>(d * d));
      std::vector<double> g_parallel(static_cast<size_t>(d * d));
      Shape gram_shape{rows, d, 0};
      std::vector<Variant> variants = {
          {"scalar",
           [&]() { kernels::ref::GramColumns(cols.data(), rows, d,
                                             shiftv.data(), nullptr,
                                             g_ref.data()); },
           &g_ref},
          {"blocked",
           [&]() { kernels::blocked::GramColumns(cols.data(), rows, d,
                                                 shiftv.data(), nullptr,
                                                 g_blocked.data()); },
           &g_blocked},
          {"parallel8",
           [&]() { kernels::GramColumns(cols.data(), rows, d, shiftv.data(),
                                        nullptr, g_parallel.data(),
                                        &parallel_opts); },
           &g_parallel}};
      if (simd_on) {
        variants.push_back(
            {"simd",
             [&]() { kernels::simd::GramColumns(cols.data(), rows, d,
                                                shiftv.data(), nullptr,
                                                g_simd.data()); },
             &g_simd});
        variants.push_back(
            {"simd_parallel8",
             [&]() { kernels::GramColumns(cols.data(), rows, d,
                                          shiftv.data(), nullptr,
                                          g_parallel.data(),
                                          &simd_parallel_opts); },
             &g_parallel});
      }
      RunCase("covariance", gram_shape,
              static_cast<double>(rows * d * (d + 1)), variants,
              1e-9 * static_cast<double>(rows), table, json);
      const std::string shape_str =
          std::to_string(rows) + "x" + std::to_string(d);
      const auto dispatch_gram = [&](const kernels::KernelOptions* o) {
        kernels::GramColumns(cols.data(), rows, d, shiftv.data(), nullptr,
                             g_parallel.data(), o);
      };
      CheckDispatchBitwise("covariance/" + shape_str + "/blocked",
                           parallel_opts, dispatch_gram, &g_parallel);
      if (simd_on) {
        CheckDispatchBitwise("covariance/" + shape_str + "/simd",
                             simd_parallel_opts, dispatch_gram, &g_parallel);
      }
    }

    {
      std::vector<double> dist_ref(static_cast<size_t>(rows * k));
      std::vector<double> dist_blocked(static_cast<size_t>(rows * k));
      std::vector<double> dist_simd(static_cast<size_t>(rows * k));
      std::vector<double> dist_parallel(static_cast<size_t>(rows * k));
      std::vector<Variant> variants = {
          {"scalar",
           [&]() { kernels::ref::PairwiseSquaredDistances(
                       cols.data(), rows, d, centers.data(), k,
                       dist_ref.data()); },
           &dist_ref},
          {"blocked",
           [&]() { kernels::blocked::PairwiseSquaredDistancesRows(
                       cols.data(), rows, d, centers.data(), k,
                       dist_blocked.data(), 0, rows); },
           &dist_blocked},
          {"parallel8",
           [&]() { kernels::PairwiseSquaredDistances(
                       cols.data(), rows, d, centers.data(), k,
                       dist_parallel.data(), &parallel_opts); },
           &dist_parallel}};
      if (simd_on) {
        variants.push_back(
            {"simd",
             [&]() { kernels::simd::PairwiseSquaredDistances(
                         cols.data(), rows, d, centers.data(), k,
                         dist_simd.data()); },
             &dist_simd});
        variants.push_back(
            {"simd_parallel8",
             [&]() { kernels::PairwiseSquaredDistances(
                         cols.data(), rows, d, centers.data(), k,
                         dist_parallel.data(), &simd_parallel_opts); },
             &dist_parallel});
      }
      RunCase("distances", shape, 3.0 * static_cast<double>(rows * d * k),
              variants, 1e-10 * static_cast<double>(d), table, json);
      const std::string shape_str = std::to_string(rows) + "x" +
                                    std::to_string(d) + "x" +
                                    std::to_string(k);
      const auto dispatch_dist = [&](const kernels::KernelOptions* o) {
        kernels::PairwiseSquaredDistances(cols.data(), rows, d,
                                          centers.data(), k,
                                          dist_parallel.data(), o);
      };
      CheckDispatchBitwise("distances/" + shape_str + "/blocked",
                           parallel_opts, dispatch_dist, &dist_parallel);
      if (simd_on) {
        CheckDispatchBitwise("distances/" + shape_str + "/simd",
                             simd_parallel_opts, dispatch_dist,
                             &dist_parallel);
      }
    }
  }

  table.Print();
  std::printf(
      "\nExpected: blocked >= 3x scalar and simd >= 2x blocked on the "
      "512-cube GEMM\n(single-thread, AVX2 hardware); the parallel "
      "columns add scaling when cores\nare available and degrade to the "
      "serial tier (identical bits) when they are\nnot.\n");
  if (gemm512_blocked_gflops > 0.0 && gemm512_simd_gflops > 0.0) {
    std::printf("gemm 512^3: blocked %.2f GFLOP/s, simd %.2f GFLOP/s "
                "(%.2fx)\n",
                gemm512_blocked_gflops, gemm512_simd_gflops,
                gemm512_simd_gflops / gemm512_blocked_gflops);
  }
  const std::string json_path = ResolveJsonPath(args, "BENCH_kernels.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  if (!g_equivalence_ok) {
    std::fprintf(stderr, "bench_micro_kernels: equivalence checks FAILED\n");
    return 1;
  }
  std::printf("equivalence checks passed\n");
  return 0;
}
