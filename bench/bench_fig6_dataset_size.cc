// Regenerates Fig. 6: execution-time and price speed-ups with a varying
// dataset size (the data_set_multiplier sweep), B = 0.1 x dataset size,
// #pipelines fixed. Collab improves with size; HYPPO improves more.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Iterative pipeline execution: varying dataset size", "Fig. 6");
  const bool full = FullScale();
  const int num_pipelines = full ? 50 : 12;
  const std::vector<double> multipliers =
      full ? std::vector<double>{0.05, 0.1, 0.25, 0.5, 1.0}
           : std::vector<double>{0.005, 0.01, 0.02, 0.04};
  const std::pair<const char*, MethodFactory> methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    std::printf("\n--- %s (#pipelines=%d, B=0.1) ---\n",
                use_case.name.c_str(), num_pipelines);
    Table table({"multiplier", "rows", "method", "cet (s)", "time speedup",
                 "price speedup"});
    for (double multiplier : multipliers) {
      ScenarioConfig config;
      config.use_case = use_case;
      config.num_pipelines = num_pipelines;
      config.budget_factor = 0.1;
      config.dataset_multiplier = multiplier;
      config.seed = 42;
      config.simulate = true;
      double baseline_cet = 0.0;
      double baseline_price = 0.0;
      for (const auto& [name, factory] : methods) {
        auto result = RunIterativeScenario(factory, config);
        result.status().Abort(name);
        if (std::string(name) == "NoOptimization") {
          baseline_cet = result->cumulative_seconds;
          baseline_price = result->price_eur;
        }
        table.AddRow({FormatDouble(multiplier, 4),
                      std::to_string(use_case.RowsAt(multiplier)), name,
                      FormatDouble(result->cumulative_seconds, 2),
                      Speedup(baseline_cet, result->cumulative_seconds),
                      Speedup(baseline_price, result->price_eur)});
      }
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): both optimizers gain more on larger\n"
      "datasets; HYPPO's speed-up exceeds Collab's at every size.\n");
  return 0;
}
