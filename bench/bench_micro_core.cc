// Micro-benchmarks (google-benchmark) for the core building blocks:
// B-connectivity, canonical naming, parsing, augmentation, plan search,
// the DAG reuse min-cut, and ML operator kernels.

#include <benchmark/benchmark.h>

#include <set>

#include "baselines/collab_e.h"
#include "baselines/dag_reuse.h"
#include "core/hyppo.h"
#include "hypergraph/algorithms.h"
#include "core/naming.h"
#include "core/parser.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"
#include "workload/synthetic_hypergraph.h"

namespace {

using namespace hyppo;

void BM_BConnectivity(benchmark::State& state) {
  workload::SyntheticConfig config;
  config.num_artifacts = static_cast<int32_t>(state.range(0));
  config.alternatives = 2;
  config.seed = 1;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  synthetic.status().Abort("generate");
  const Hypergraph& graph = synthetic->aug.graph.hypergraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.BConnectedFrom({0}));
  }
}
BENCHMARK(BM_BConnectivity)->Arg(16)->Arg(64)->Arg(256);

void BM_CanonicalNaming(benchmark::State& state) {
  core::TaskInfo task;
  task.logical_op = "StandardScaler";
  task.type = core::TaskType::kFit;
  task.config.SetDouble("alpha", 0.5);
  const std::vector<std::string> inputs = {"0123456789abcdef",
                                           "fedcba9876543210"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TaskOutputNames(task, inputs, 2));
  }
}
BENCHMARK(BM_CanonicalNaming);

void BM_ParsePipeline(benchmark::State& state) {
  const core::Dictionary dictionary =
      core::Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  const char* code = R"(
data        = load("higgs", rows=800000, cols=30)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
scaler      = sk.StandardScaler.fit(train)
train_s     = scaler.transform(train)
test_s      = scaler.transform(test)
model       = sk.RandomForestClassifier.fit(train_s, n_estimators=20)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";
  for (auto _ : state) {
    auto pipeline = core::ParsePipeline(code, "bench", dictionary);
    pipeline.status().Abort("parse");
    benchmark::DoNotOptimize(pipeline);
  }
}
BENCHMARK(BM_ParsePipeline);

// Augmentation + optimization against a populated history: the per-
// pipeline overhead HYPPO adds in steady state (paper: < 10 ms).
class PlannerFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (runtime) {
      return;
    }
    core::RuntimeOptions options;
    options.storage_budget_bytes = 64ll << 20;
    options.simulate = true;
    runtime = std::make_unique<core::Runtime>(options);
    const workload::UseCase use_case = workload::UseCase::Higgs();
    runtime->RegisterDatasetGenerator(use_case.DatasetId(0.01), [use_case]() {
      return workload::GenerateUseCase(use_case, 0.01, 42);
    });
    method = std::make_unique<core::HyppoMethod>(runtime.get());
    generator = std::make_unique<workload::PipelineGenerator>(use_case, 0.01,
                                                              42);
    const int64_t history_size = state.range(0);
    for (int64_t i = 0; i < history_size; ++i) {
      auto pipeline = generator->Next();
      pipeline.status().Abort("generate");
      auto planned = method->PlanPipeline(*pipeline);
      planned.status().Abort("plan");
      auto record =
          runtime->ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
      record.status().Abort("execute");
      method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
    }
    fresh = std::make_unique<core::Pipeline>(*generator->Next());
  }

  void TearDown(const benchmark::State&) override {}

  std::unique_ptr<core::Runtime> runtime;
  std::unique_ptr<core::HyppoMethod> method;
  std::unique_ptr<workload::PipelineGenerator> generator;
  std::unique_ptr<core::Pipeline> fresh;
};

BENCHMARK_DEFINE_F(PlannerFixture, AugmentAndOptimize)
(benchmark::State& state) {
  for (auto _ : state) {
    auto planned = method->PlanPipeline(*fresh);
    planned.status().Abort("plan");
    benchmark::DoNotOptimize(planned);
  }
}
BENCHMARK_REGISTER_F(PlannerFixture, AugmentAndOptimize)->Arg(10)->Arg(30);

// Materializer guards: the decision sweep is O(E + V log V) thanks to the
// hoisted RecomputeCosts()/depth precomputation — Gain() per node against
// shared vectors, not a per-node value iteration. A regression to the
// O(V*E) shape shows up directly in GainSweep's scaling with history
// size.
BENCHMARK_DEFINE_F(PlannerFixture, MaterializerGainSweep)
(benchmark::State& state) {
  core::Materializer materializer(&runtime->augmenter());
  core::Materializer::Options options;
  options.budget_bytes = runtime->options().storage_budget_bytes;
  const core::History& history = runtime->history();
  for (auto _ : state) {
    const std::vector<double> recompute =
        materializer.RecomputeCosts(history);
    const std::vector<double> depth = AverageDepthFromSource(
        history.graph().hypergraph(), history.graph().source());
    double total = 0.0;
    for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
      total += materializer.Gain(history, v, options, recompute, depth);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          (history.graph().num_artifacts() - 1));
}
BENCHMARK_REGISTER_F(PlannerFixture, MaterializerGainSweep)
    ->Arg(10)
    ->Arg(30);

BENCHMARK_DEFINE_F(PlannerFixture, MaterializerDecide)
(benchmark::State& state) {
  core::Materializer materializer(&runtime->augmenter());
  core::Materializer::Options options;
  options.budget_bytes = runtime->options().storage_budget_bytes;
  const core::History& history = runtime->history();
  std::set<std::string> storable;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    storable.insert(history.graph().artifact(v).name);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        materializer.Decide(history, storable, options));
  }
}
BENCHMARK_REGISTER_F(PlannerFixture, MaterializerDecide)->Arg(10)->Arg(30);

void BM_DagReuseMinCut(benchmark::State& state) {
  workload::SyntheticConfig config;
  config.num_artifacts = static_cast<int32_t>(state.range(0));
  config.alternatives = 1;
  config.seed = 3;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  synthetic.status().Abort("generate");
  const auto chosen = baselines::OriginalDerivations(synthetic->aug);
  for (auto _ : state) {
    auto plan = baselines::SolveDagReuse(synthetic->aug, chosen,
                                         synthetic->aug.targets);
    plan.status().Abort("reuse");
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_DagReuseMinCut)->Arg(16)->Arg(64);

void BM_OptimizePriority(benchmark::State& state) {
  workload::SyntheticConfig config;
  config.num_artifacts = static_cast<int32_t>(state.range(0));
  config.alternatives = 2;
  config.seed = 7;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  synthetic.status().Abort("generate");
  core::PlanGenerator generator;
  core::PlanGenerator::Options options;
  options.strategy = core::PlanGenerator::Strategy::kPriority;
  for (auto _ : state) {
    auto plan = generator.Optimize(synthetic->aug, options);
    plan.status().Abort("optimize");
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizePriority)->Arg(10)->Arg(14)->Arg(18);

void BM_StandardScalerFit(benchmark::State& state) {
  auto data = workload::GenerateHiggs(state.range(0), 30, 42);
  data.status().Abort("generate");
  auto op = ml::OperatorRegistry::Global().Get("skl.StandardScaler");
  op.status().Abort("lookup");
  ml::TaskInputs inputs;
  inputs.datasets.push_back(*data);
  for (auto _ : state) {
    auto out = (*op)->Execute(ml::MlTask::kFit, inputs, ml::Config());
    out.status().Abort("fit");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 30);
}
BENCHMARK(BM_StandardScalerFit)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
