// Batch multi-query optimization for hyperparameter sweeps: a grid of
// model configurations sharing one preprocessing trunk is planned and
// executed as one merged batch (HyppoSystem::RunBatch, batch_planning
// on) versus the sequential per-pipeline loop (batch_planning off).
// Batch mode pays one augmentation + lower-bound pass for the whole
// sweep and skips re-executing the shared prefix via cross-member
// seeding, so total (plan + execute) cost drops while payloads stay
// byte-identical (ROADMAP "Batch / hyperparameter-sweep workloads";
// docs/SWEEP.md).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/hyppo.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/sweep_generator.h"

namespace {

using hyppo::Result;
using hyppo::Status;

struct Config {
  double dataset_multiplier = 0.05;
  std::vector<int> sweep_sizes = {10, 25, 50};
};

Config ConfigForScale() {
  switch (hyppo::bench::BenchScale()) {
    case hyppo::bench::Scale::kSmoke:
      return {0.005, {6, 12}};
    case hyppo::bench::Scale::kFull:
      return {0.2, {10, 25, 50, 100}};
    default:
      return Config();
  }
}

// The benched sweep: an expensive shared trunk (impute + scale + a
// KMeans distance embedding over the raw taxi columns) feeding cheap
// per-config models (ridge regression over a fine alpha grid — a
// closed-form fit on the handful of embedding features). This is the
// trunk-heavy shape hyperparameter sweeps take in practice — tuning
// the model, not the preprocessing — and the regime multi-query
// optimization targets: the shared prefix is most of the total cost.
hyppo::workload::PipelineSpec SweepBaseSpec() {
  hyppo::workload::PipelineSpec spec;
  spec.imputer.logical_op = "SimpleImputer";
  spec.imputer.impl = "skl.SimpleImputer";
  spec.imputer.config.Set("strategy", "mean");
  spec.scaler.logical_op = "StandardScaler";
  spec.scaler.impl = "skl.StandardScaler";
  spec.feature.logical_op = "KMeans";
  spec.feature.impl = "skl.KMeans";
  spec.feature.config.SetInt("n_clusters", 8);
  spec.model.logical_op = "Ridge";
  spec.model.impl = "skl.Ridge";
  spec.metric = "rmse";
  spec.split_seed = 13;
  return spec;
}

std::vector<hyppo::workload::SweepAxis> SweepAxes(int num_configs) {
  // One fine regularization axis: num_configs distinct alpha values.
  hyppo::workload::SweepAxis alpha;
  alpha.stage = hyppo::workload::SweepAxis::Stage::kModel;
  alpha.param = "alpha";
  for (int i = 0; i < num_configs; ++i) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.4f", 0.01 * (i + 1));
    alpha.values.push_back(value);
  }
  return {std::move(alpha)};
}

hyppo::core::HyppoSystem MakeSystem(const Config& config,
                                    bool batch_planning) {
  hyppo::core::HyppoSystem::Options options;
  options.runtime.simulate = false;
  // Storage-constrained sweep regime: fitted op-states (centroids,
  // scaler means, ridge weights) are tiny and still materialize, so the
  // sequential loop reuses every expensive *fit* — but the bulky
  // transformed train/test datasets exceed the budget, so sequential
  // re-runs the trunk's transforms per config. Batch seeding shares
  // them in memory without touching the store.
  options.runtime.storage_budget_bytes = 64ll << 10;
  options.runtime.batch_planning = batch_planning;
  // Pinned implementations so both topologies produce byte-identical
  // payloads (equivalence augmentation may legally swap in equivalent
  // but not bitwise-identical implementations; see serving_test.cc).
  options.method.augment.use_equivalences = false;
  hyppo::core::HyppoSystem system(options);
  const hyppo::workload::UseCase use_case = hyppo::workload::UseCase::Taxi();
  const double multiplier = config.dataset_multiplier;
  system.runtime().RegisterDatasetGenerator(
      use_case.DatasetId(multiplier), [use_case, multiplier]() {
        return hyppo::workload::GenerateUseCase(use_case, multiplier,
                                                /*seed=*/7);
      });
  return system;
}

struct RunOutcome {
  double wall_seconds = 0.0;
  double plan_seconds = 0.0;
  double execute_seconds = 0.0;
  int64_t merged_tasks = 0;
  int64_t shared_prefix_skips = 0;
  // Serialized target payloads by canonical name, for the byte-identity
  // cross-check between the two modes.
  std::map<std::string, std::string> payloads;
};

Result<RunOutcome> RunSweep(const Config& config, int num_configs,
                            bool batch_planning) {
  hyppo::core::HyppoSystem system = MakeSystem(config, batch_planning);
  hyppo::workload::SweepGenerator generator(hyppo::workload::UseCase::Taxi(),
                                            config.dataset_multiplier,
                                            /*seed=*/11);
  hyppo::workload::SweepOptions sweep_options;
  sweep_options.mode = hyppo::workload::SweepOptions::Mode::kGrid;
  sweep_options.num_configs = num_configs;
  HYPPO_ASSIGN_OR_RETURN(
      const hyppo::workload::SweepWorkload workload,
      generator.Generate(SweepBaseSpec(), SweepAxes(num_configs),
                         sweep_options, "bench-sweep"));
  const hyppo::WallClock clock;
  const hyppo::Stopwatch watch(clock);
  HYPPO_ASSIGN_OR_RETURN(const hyppo::core::HyppoSystem::BatchRunReport report,
                         system.RunBatch(workload.pipelines));
  RunOutcome outcome;
  outcome.wall_seconds = watch.Elapsed();
  outcome.plan_seconds = report.optimize_seconds;
  outcome.execute_seconds = report.execute_seconds;
  outcome.merged_tasks = report.merged_tasks;
  outcome.shared_prefix_skips = report.shared_prefix_skips;
  if (report.batched != (batch_planning && num_configs >= 2)) {
    return Status::Internal("unexpected batch-mode flag");
  }
  for (const auto& member : report.reports) {
    for (const auto& [name, payload] : member.target_payloads) {
      HYPPO_ASSIGN_OR_RETURN(std::string bytes,
                             hyppo::storage::SerializePayload(payload));
      outcome.payloads[name] = std::move(bytes);
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const hyppo::bench::BenchArgs args =
      hyppo::bench::ParseBenchArgs(argc, argv);
  const Config config = ConfigForScale();
  hyppo::bench::Banner(
      "Hyperparameter-sweep batch planning vs. sequential",
      "ROADMAP batch workloads; multi-query optimization per HYPPO Sec. 4");

  hyppo::bench::JsonWriter json("sweep");
  hyppo::bench::Table table({"configs", "seq_wall_s", "batch_wall_s",
                             "seq_plan_s", "batch_plan_s", "merged",
                             "skips", "identical", "speedup"});
  bool all_identical = true;
  bool all_fast_enough = true;
  for (int num_configs : config.sweep_sizes) {
    auto sequential = RunSweep(config, num_configs, /*batch_planning=*/false);
    if (!sequential.ok()) {
      std::fprintf(stderr, "sequential configs=%d failed: %s\n", num_configs,
                   sequential.status().ToString().c_str());
      return 1;
    }
    auto batch = RunSweep(config, num_configs, /*batch_planning=*/true);
    if (!batch.ok()) {
      std::fprintf(stderr, "batch configs=%d failed: %s\n", num_configs,
                   batch.status().ToString().c_str());
      return 1;
    }
    const bool identical = sequential->payloads == batch->payloads;
    all_identical = all_identical && identical;
    const double speedup =
        batch->wall_seconds > 0.0
            ? sequential->wall_seconds / batch->wall_seconds
            : 0.0;
    if (num_configs >= 50 && speedup < 2.0) {
      all_fast_enough = false;
    }
    char seq_wall[32], batch_wall[32], seq_plan[32], batch_plan[32];
    std::snprintf(seq_wall, sizeof(seq_wall), "%.3f",
                  sequential->wall_seconds);
    std::snprintf(batch_wall, sizeof(batch_wall), "%.3f",
                  batch->wall_seconds);
    std::snprintf(seq_plan, sizeof(seq_plan), "%.3f",
                  sequential->plan_seconds);
    std::snprintf(batch_plan, sizeof(batch_plan), "%.3f",
                  batch->plan_seconds);
    table.AddRow({std::to_string(num_configs), seq_wall, batch_wall,
                  seq_plan, batch_plan,
                  std::to_string(batch->merged_tasks),
                  std::to_string(batch->shared_prefix_skips),
                  identical ? "yes" : "NO",
                  hyppo::bench::Speedup(sequential->wall_seconds,
                                        batch->wall_seconds)});
    json.AddRow("sweep")
        .Set("configs", num_configs)
        .Set("sequential_wall_seconds", sequential->wall_seconds)
        .Set("batch_wall_seconds", batch->wall_seconds)
        .Set("sequential_plan_seconds", sequential->plan_seconds)
        .Set("batch_plan_seconds", batch->plan_seconds)
        .Set("sequential_execute_seconds", sequential->execute_seconds)
        .Set("batch_execute_seconds", batch->execute_seconds)
        .Set("merged_tasks", static_cast<double>(batch->merged_tasks))
        .Set("shared_prefix_skips",
             static_cast<double>(batch->shared_prefix_skips))
        .Set("payloads_identical", identical ? "true" : "false")
        .Set("speedup", speedup);
  }
  table.Print();
  std::printf(
      "\nBatch mode merges the sweep's shared preprocessing trunk into one\n"
      "task graph (merged > 0), plans all members against one augmented\n"
      "hypergraph, and skips re-executing trunk tasks via cross-member\n"
      "seeding (skips > 0) — payloads stay byte-identical to the\n"
      "sequential loop.\n");
  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_sweep.json");
  if (!json_path.empty() && !json.WriteTo(json_path)) {
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: batch payloads diverged from sequential\n");
    return 1;
  }
  if (!all_fast_enough) {
    std::fprintf(stderr,
                 "FAIL: batch speedup below 2x on a >=50-config sweep\n");
    return 1;
  }
  return 0;
}
