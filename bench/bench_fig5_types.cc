// Regenerates Fig. 5: the artifact/task type study.
//  (a) monetary storage cost per budget
//  (b) fraction of stored artifacts by type per budget
//  (c) average computational cost per artifact type
//  (d) average size per artifact type
//  (e) average execution time per task type
// All collected while running scenario 1 under HYPPO.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Artifact and task type study", "Fig. 5(a)-(e)");
  const bool full = FullScale();
  const std::vector<double> budgets = {0.01, 0.05, 0.1, 0.5, 1.0};

  // (a) + (b): sweep the budget.
  Table stored({"B (xdataset)", "storage price (EUR)", "op-state stored",
                "value stored", "train stored", "test stored"});
  TypeStudyResult last;
  for (double budget : budgets) {
    ScenarioConfig config;
    config.use_case = UseCase::Higgs();
    config.num_pipelines = full ? 50 : 15;
    config.budget_factor = budget;
    config.dataset_multiplier = full ? 0.1 : 0.01;
    config.seed = 42;
    config.simulate = true;
    auto study = RunTypeStudy(config);
    study.status().Abort("type study");
    auto fraction = [&](const char* label) {
      for (const TypeStudyRow& row : study->artifact_kinds) {
        if (row.label == label) {
          return FormatDouble(100.0 * row.stored_fraction, 1) + "%";
        }
      }
      return std::string("-");
    };
    stored.AddRow({FormatDouble(budget, 2),
                   FormatDouble(study->storage_price_eur, 5),
                   fraction("op-state"), fraction("value"),
                   fraction("train"), fraction("test")});
    if (budget == 0.1) {
      last = *study;
    }
  }
  std::printf("\n(a)+(b) storage cost and stored fraction by type:\n");
  stored.Print();

  std::printf("\n(c)+(d) artifact kinds at B=0.1 (mean compute seconds, mean size):\n");
  Table kinds({"artifact type", "count", "mean compute", "mean size"});
  for (const TypeStudyRow& row : last.artifact_kinds) {
    kinds.AddRow({row.label, std::to_string(row.count),
                  FormatSeconds(row.mean_seconds),
                  FormatBytes(row.mean_bytes)});
  }
  kinds.Print();

  std::printf("\n(e) task types at B=0.1 (mean execution seconds):\n");
  Table tasks({"task type", "count", "mean seconds"});
  for (const TypeStudyRow& row : last.task_types) {
    tasks.AddRow({row.label, std::to_string(row.count),
                  FormatSeconds(row.mean_seconds)});
  }
  tasks.Print();

  std::printf(
      "\nExpected shape (paper): value (~B) < op-state (~KB) << test < train\n"
      "(~MB) in size; fit >> transform >> evaluate in time; the materializer\n"
      "fills value and op-state artifacts first as the budget grows.\n");
  return 0;
}
