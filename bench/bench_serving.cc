// Multi-tenant serving throughput: N concurrent sessions share one
// history + artifact store through serving::SessionManager, so one
// session's materialized artifacts serve every other session's
// equivalent plans. Reports per-configuration throughput, p50/p99
// session latency, and the cross-session reuse that produces the
// scaling (ROADMAP "Multi-tenant serving runtime"; docs/SERVING.md).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/pipeline_builder.h"
#include "serving/session_manager.h"
#include "workload/datagen.h"

namespace {

using hyppo::NodeId;
using hyppo::Result;

struct Config {
  int64_t rows = 240;
  int64_t cols = 6;
  int pipelines_per_session = 3;
  std::vector<int> sessions = {1, 2, 4, 8};
};

Config ConfigForScale() {
  switch (hyppo::bench::BenchScale()) {
    case hyppo::bench::Scale::kSmoke:
      return {120, 5, 2, {1, 2}};
    case hyppo::bench::Scale::kFull:
      return {800, 10, 4, {1, 2, 4, 8}};
    default:
      return Config();
  }
}

// The step-th pipeline of every session's exploratory sequence: shared
// split + imputer + scaler preprocessing, model hyper-parameters varying
// by step. Sessions run the same logical sequence — the serving analogue
// of many users exploring the same dataset — so whichever session runs a
// step first materializes the artifacts everyone else loads.
Result<hyppo::core::Pipeline> StepPipeline(const Config& config, int session,
                                           int step) {
  hyppo::core::PipelineBuilder builder("serve-s" + std::to_string(session) +
                                       "-p" + std::to_string(step));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId data,
      builder.LoadDataset("serving-unit", config.rows, config.cols));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  hyppo::ml::Config impute;
  impute.Set("strategy", "mean");
  HYPPO_ASSIGN_OR_RETURN(
      NodeId imputer,
      builder.Fit("SimpleImputer", "skl.SimpleImputer", split.first, impute));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_i,
                         builder.Transform(imputer, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_i,
                         builder.Transform(imputer, split.second));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s, builder.Transform(scaler, train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s, builder.Transform(scaler, test_i));
  hyppo::ml::Config model_config;
  model_config.SetInt("max_depth", 3 + step);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                  train_s, model_config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct RunOutcome {
  double wall_seconds = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  int64_t pipelines = 0;
  int64_t reuse_loads = 0;
  int64_t cross_session_loads = 0;
  int64_t replans = 0;
};

Result<RunOutcome> RunConfiguration(const Config& config, int num_sessions) {
  hyppo::serving::ServingOptions options;
  options.runtime.simulate = false;
  options.runtime.storage_budget_bytes = 8ll << 20;
  options.max_in_flight_sessions = num_sessions;
  hyppo::serving::SessionManager manager(options);
  const Config cfg = config;
  manager.runtime().RegisterDatasetGenerator("serving-unit", [cfg]() {
    return hyppo::workload::GenerateHiggs(cfg.rows, cfg.cols, /*seed=*/7);
  });
  std::vector<hyppo::serving::SessionRequest> requests;
  for (int s = 0; s < num_sessions; ++s) {
    hyppo::serving::SessionRequest request;
    request.session_id = "bench-" + std::to_string(s);
    for (int p = 0; p < config.pipelines_per_session; ++p) {
      HYPPO_ASSIGN_OR_RETURN(hyppo::core::Pipeline pipeline,
                             StepPipeline(config, s, p));
      request.pipelines.push_back(std::move(pipeline));
    }
    requests.push_back(std::move(request));
  }
  const hyppo::WallClock clock;
  const hyppo::Stopwatch watch(clock);
  const std::vector<hyppo::serving::SessionReport> reports =
      manager.RunSessions(requests);
  RunOutcome outcome;
  outcome.wall_seconds = watch.Elapsed();
  std::vector<double> session_walls;
  for (const hyppo::serving::SessionReport& report : reports) {
    HYPPO_RETURN_NOT_OK(report.status);
    outcome.pipelines += report.pipelines_completed;
    outcome.reuse_loads += report.reuse_loads;
    outcome.cross_session_loads += report.cross_session_loads;
    outcome.replans += report.replans;
    session_walls.push_back(report.wall_seconds);
  }
  outcome.p50 = Quantile(session_walls, 0.5);
  outcome.p99 = Quantile(session_walls, 0.99);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const hyppo::bench::BenchArgs args =
      hyppo::bench::ParseBenchArgs(argc, argv);
  const Config config = ConfigForScale();
  hyppo::bench::Banner(
      "Multi-tenant serving: sessions sharing one history/store",
      "ROADMAP serving runtime; cross-session reuse per Helix/Li et al.");

  hyppo::bench::JsonWriter json("serving");
  hyppo::bench::Table table({"sessions", "threads", "pipelines", "wall_s",
                             "pipelines/s", "p50_s", "p99_s", "reuse",
                             "x-session", "replans", "throughput"});
  double base_throughput = 0.0;
  for (int num_sessions : config.sessions) {
    auto outcome = RunConfiguration(config, num_sessions);
    if (!outcome.ok()) {
      std::fprintf(stderr, "sessions=%d failed: %s\n", num_sessions,
                   outcome.status().ToString().c_str());
      return 1;
    }
    const double throughput =
        outcome->wall_seconds > 0.0
            ? static_cast<double>(outcome->pipelines) / outcome->wall_seconds
            : 0.0;
    if (num_sessions == 1) {
      base_throughput = throughput;
    }
    char wall[32], p50[32], p99[32], tput[32];
    std::snprintf(wall, sizeof(wall), "%.3f", outcome->wall_seconds);
    std::snprintf(p50, sizeof(p50), "%.3f", outcome->p50);
    std::snprintf(p99, sizeof(p99), "%.3f", outcome->p99);
    std::snprintf(tput, sizeof(tput), "%.2f", throughput);
    table.AddRow({std::to_string(num_sessions),
                  std::to_string(num_sessions),
                  std::to_string(outcome->pipelines), wall, tput, p50, p99,
                  std::to_string(outcome->reuse_loads),
                  std::to_string(outcome->cross_session_loads),
                  std::to_string(outcome->replans),
                  hyppo::bench::Speedup(throughput, base_throughput)});
    json.AddRow("serving")
        .Set("sessions", num_sessions)
        .Set("threads", num_sessions)
        .Set("pipelines", static_cast<double>(outcome->pipelines))
        .Set("wall_seconds", outcome->wall_seconds)
        .Set("throughput_pipelines_per_second", throughput)
        .Set("p50_session_seconds", outcome->p50)
        .Set("p99_session_seconds", outcome->p99)
        .Set("reuse_loads", static_cast<double>(outcome->reuse_loads))
        .Set("cross_session_loads",
             static_cast<double>(outcome->cross_session_loads))
        .Set("replans", static_cast<double>(outcome->replans));
  }
  table.Print();
  std::printf(
      "\nThroughput scales with sessions because later sessions load the\n"
      "prefix artifacts the first session materialized instead of\n"
      "recomputing them (cross-session reuse; x-session > 0).\n");
  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_serving.json");
  if (!json_path.empty() && !json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
