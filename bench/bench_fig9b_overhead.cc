// Regenerates Fig. 9(b): optimization overhead — the wall time the
// planner itself takes — for various <#pipelines, #history nodes> pairs,
// HYPPO vs Collab. The history is grown by running pipelines; then a
// fresh pipeline is planned repeatedly and the planning time is measured.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

struct Overhead {
  double plan_seconds = 0.0;
  int history_nodes = 0;
};

Overhead MeasureOverhead(const MethodFactory& factory, int history_pipelines,
                         double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  core::Runtime runtime(options);
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  std::unique_ptr<core::Method> method = factory(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  for (int i = 0; i < history_pipelines; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  // Measure planning time of fresh pipelines (5 repetitions averaged).
  Overhead overhead;
  overhead.history_nodes = runtime.history().num_artifacts();
  const int repetitions = 5;
  for (int i = 0; i < repetitions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    overhead.plan_seconds += planned->optimize_seconds;
    // Execute + record so the history keeps growing realistically.
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  overhead.plan_seconds /= repetitions;
  return overhead;
}

}  // namespace

int main() {
  Banner("Optimization overhead vs history size", "Fig. 9(b)");
  const bool full = FullScale();
  const std::vector<int> histories =
      full ? std::vector<int>{10, 25, 50, 100, 200}
           : std::vector<int>{5, 10, 20, 40};
  const double multiplier = 0.01;
  Table table({"#pipelines in H", "#H nodes", "method", "plan time"});
  for (int history : histories) {
    for (const auto& [name, factory] :
         {std::pair<const char*, MethodFactory>{"Collab",
                                                MakeCollabFactory()},
          std::pair<const char*, MethodFactory>{"HYPPO",
                                                MakeHyppoFactory()}}) {
      Overhead overhead = MeasureOverhead(factory, history, multiplier);
      table.AddRow({std::to_string(history),
                    std::to_string(overhead.history_nodes), name,
                    FormatSeconds(overhead.plan_seconds)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): HYPPO's planner stays in the milliseconds\n"
      "and scales gracefully with history size.\n");
  return 0;
}
