// Regenerates Fig. 9(b): optimization overhead — the wall time the
// planner itself takes — for various <#pipelines, #history nodes> pairs,
// HYPPO vs Collab. The history is grown by running pipelines; then a
// fresh pipeline is planned repeatedly and the planning time is measured.
//
// A second section measures the execution layer's fault-hook overhead:
// the per-execution cost of consulting an armed-but-silent FaultInjector
// (zero rates) at every load/resolver/compute site, versus running with
// no injector at all. The hooks must stay within noise of the baseline.
//
// A third section measures plan-verification overhead under
// `verify_plans`: the submit-time static pre-check clears plans and
// skips the executor's CheckPlan re-verification, versus paying the
// runtime re-check on every execution.
//
// A fourth section sweeps history sizes an order of magnitude past the
// execution-driven section (the history is grown synthetically from
// pipeline structure observations, no execution) and compares the
// augmenter's indexed equivalence-lookup path against the reference
// full-graph scan, asserting cost-identical plans along the way.
// Pass `--json <path>` to also dump the measurements as a JSON document
// (bench/BENCH_fig9b.json is a committed snapshot).

#include <cmath>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/augmenter.h"
#include "core/dictionary.h"
#include "core/hyppo.h"
#include "core/optimizer.h"
#include "storage/fault_injection.h"
#include "workload/pipeline_generator.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

struct Overhead {
  double plan_seconds = 0.0;
  int history_nodes = 0;
};

Overhead MeasureOverhead(const MethodFactory& factory, int history_pipelines,
                         double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  core::Runtime runtime(options);
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  std::unique_ptr<core::Method> method = factory(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  for (int i = 0; i < history_pipelines; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  // Measure planning time of fresh pipelines (5 repetitions averaged).
  Overhead overhead;
  overhead.history_nodes = runtime.history().num_artifacts();
  const int repetitions = 5;
  for (int i = 0; i < repetitions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    overhead.plan_seconds += planned->optimize_seconds;
    // Execute + record so the history keeps growing realistically.
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  overhead.plan_seconds /= repetitions;
  return overhead;
}

// Mean wall seconds per simulated plan execution, with the fault hooks
// disabled (no injector) or armed with an all-zero-rate plan (every site
// consults the injector, no fault ever fires).
double MeasureExecutionSeconds(bool with_injector, int executions,
                               double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  core::Runtime runtime(options);
  if (with_injector) {
    runtime.EnableFaultInjection(storage::FaultPlan::Uniform(42, 0.0));
  }
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  core::HyppoMethod method(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  WallClock clock;
  double elapsed = 0.0;
  for (int i = 0; i < executions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method.PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    Stopwatch watch(clock);
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan,
                                 method.MakeReplanner());
    elapsed += watch.Elapsed();
    record.status().Abort("execute");
    method.AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  return elapsed / executions;
}

// Plan-verification overhead with `verify_plans` on: when the static
// analyzer's submit-time pre-check is enabled it proves the same
// invariants first and the executor's CheckPlan re-verification is
// skipped; with static checks off every execution pays the runtime
// re-check. Both modes run identical work otherwise.
struct VerifyOverhead {
  double mean_execute_seconds = 0.0;
  int64_t static_clears = 0;
  int64_t plan_checks_skipped = 0;
};

VerifyOverhead MeasureVerifyOverhead(bool static_checks, int executions,
                                     double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  options.verify_plans = true;
  options.static_checks = static_checks;
  core::Runtime runtime(options);
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  core::HyppoMethod method(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  WallClock clock;
  VerifyOverhead result;
  double elapsed = 0.0;
  for (int i = 0; i < executions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method.PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    Stopwatch watch(clock);
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    elapsed += watch.Elapsed();
    record.status().Abort("execute");
    method.AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  result.mean_execute_seconds = elapsed / executions;
  result.static_clears = runtime.monitor().num_static_clears();
  result.plan_checks_skipped = runtime.monitor().num_plan_checks_skipped();
  return result;
}

// Grows a history from pipeline structure alone — the exact observation
// sequence Runtime::RecordPipelineStructure performs after an execution
// (artifact observes + access stamps, raw-source registration, compute
// task observes), minus the execution. This reaches history sizes an
// order of magnitude beyond what the execution-driven sweep can afford.
void GrowHistorySynthetically(core::History& history,
                              PipelineGenerator& generator, int pipelines,
                              double* clock_seconds) {
  for (int i = 0; i < pipelines; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    const core::PipelineGraph& graph = pipeline->graph;
    std::map<NodeId, NodeId> to_history;
    for (NodeId v = 1; v < graph.num_artifacts(); ++v) {
      const core::ArtifactInfo& info = graph.artifact(v);
      const NodeId node = history.Observe(info);
      to_history[v] = node;
      history.RecordAccess(node, *clock_seconds);
      if (info.kind == core::ArtifactKind::kRaw) {
        history.RegisterSourceData(node).status().Abort("source");
      }
    }
    for (EdgeId e : graph.hypergraph().LiveEdges()) {
      const core::TaskInfo& task = graph.task(e);
      if (task.type == core::TaskType::kLoad) {
        continue;
      }
      std::vector<NodeId> tails;
      for (NodeId t : graph.ordered_tail(e)) {
        if (t != graph.source()) {
          tails.push_back(to_history[t]);
        }
      }
      std::vector<NodeId> heads;
      for (NodeId h : graph.ordered_head(e)) {
        heads.push_back(to_history[h]);
        history.RecordComputeSeconds(to_history[h], 0.1);
      }
      history.ObserveTask(task, tails, heads, 0.1).status().Abort("task");
    }
    *clock_seconds += 1.0;
  }
}

// Mean augmentation time over the probe pipelines with the equivalence
// lookups answered by the HistoryIndex (`use_index`) or by the reference
// full-graph scan. Plan costs are summed so the caller can assert the
// two paths produce cost-identical plans.
struct LookupOverhead {
  double augment_seconds = 0.0;
  double plan_cost_sum = 0.0;
};

LookupOverhead MeasureLookupOverhead(
    const core::History& history,
    const std::vector<core::Pipeline>& probes, bool use_index) {
  core::Dictionary dictionary =
      core::Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  core::CostEstimator estimator;
  core::Augmenter augmenter(&dictionary, &estimator);
  core::Augmenter::Options options;
  options.use_index = use_index;
  core::PlanGenerator plan_generator;
  WallClock clock;
  LookupOverhead result;
  for (const core::Pipeline& probe : probes) {
    Stopwatch watch(clock);
    auto aug = augmenter.Augment(probe, history, options);
    result.augment_seconds += watch.Elapsed();
    aug.status().Abort("augment");
    auto plan = plan_generator.Optimize(*aug, core::PlanGenerator::Options());
    plan.status().Abort("plan");
    result.plan_cost_sum += plan->cost;
  }
  result.augment_seconds /= static_cast<double>(probes.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  JsonWriter json("fig9b_overhead");
  Banner("Optimization overhead vs history size", "Fig. 9(b)");
  const bool full = FullScale();
  const std::vector<int> histories =
      full ? std::vector<int>{10, 25, 50, 100, 200}
           : std::vector<int>{5, 10, 20, 40};
  const double multiplier = 0.01;
  Table table({"#pipelines in H", "#H nodes", "method", "plan time"});
  for (int history : histories) {
    for (const auto& [name, factory] :
         {std::pair<const char*, MethodFactory>{"Collab",
                                                MakeCollabFactory()},
          std::pair<const char*, MethodFactory>{"HYPPO",
                                                MakeHyppoFactory()}}) {
      Overhead overhead = MeasureOverhead(factory, history, multiplier);
      table.AddRow({std::to_string(history),
                    std::to_string(overhead.history_nodes), name,
                    FormatSeconds(overhead.plan_seconds)});
      json.AddRow("plan_overhead")
          .Set("history_pipelines", history)
          .Set("history_nodes", overhead.history_nodes)
          .Set("method", name)
          .Set("plan_seconds", overhead.plan_seconds);
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): HYPPO's planner stays in the milliseconds\n"
      "and scales gracefully with history size.\n");

  Banner("Fault-hook overhead (injection disabled)", "execution layer");
  const int executions = full ? 200 : 50;
  Table hooks({"fault hooks", "mean execute time", "vs baseline"});
  const double baseline =
      MeasureExecutionSeconds(/*with_injector=*/false, executions,
                              multiplier);
  const double hooked =
      MeasureExecutionSeconds(/*with_injector=*/true, executions, multiplier);
  hooks.AddRow({"off", FormatSeconds(baseline), "1.0x"});
  hooks.AddRow({"armed, zero rate", FormatSeconds(hooked),
                Speedup(hooked, baseline)});
  hooks.Print();
  json.AddRow("fault_hook_overhead")
      .Set("mode", "off")
      .Set("executions", executions)
      .Set("mean_execute_seconds", baseline);
  json.AddRow("fault_hook_overhead")
      .Set("mode", "armed_zero_rate")
      .Set("executions", executions)
      .Set("mean_execute_seconds", hooked);
  std::printf(
      "\nExpected shape: an armed-but-silent injector takes the cold-site\n"
      "fast path (one flag check per task) and stays within noise of the\n"
      "no-injector baseline.\n");

  Banner("Plan-verification overhead (verify_plans on)", "static analyzer");
  Table verify({"mode", "mean execute time", "checks skipped", "vs runtime"});
  const VerifyOverhead runtime_check =
      MeasureVerifyOverhead(/*static_checks=*/false, executions, multiplier);
  const VerifyOverhead static_skip =
      MeasureVerifyOverhead(/*static_checks=*/true, executions, multiplier);
  verify.AddRow({"runtime CheckPlan",
                 FormatSeconds(runtime_check.mean_execute_seconds),
                 std::to_string(runtime_check.plan_checks_skipped), "1.0x"});
  verify.AddRow({"static pre-check skip",
                 FormatSeconds(static_skip.mean_execute_seconds),
                 std::to_string(static_skip.plan_checks_skipped),
                 Speedup(static_skip.mean_execute_seconds,
                         runtime_check.mean_execute_seconds)});
  verify.Print();
  json.AddRow("plan_verify_overhead")
      .Set("mode", "runtime_checkplan")
      .Set("executions", executions)
      .Set("mean_execute_seconds", runtime_check.mean_execute_seconds)
      .Set("static_clears", static_cast<double>(runtime_check.static_clears))
      .Set("plan_checks_skipped",
           static_cast<double>(runtime_check.plan_checks_skipped));
  json.AddRow("plan_verify_overhead")
      .Set("mode", "static_precheck_skip")
      .Set("executions", executions)
      .Set("mean_execute_seconds", static_skip.mean_execute_seconds)
      .Set("static_clears", static_cast<double>(static_skip.static_clears))
      .Set("plan_checks_skipped",
           static_cast<double>(static_skip.plan_checks_skipped));
  std::printf(
      "\nExpected shape: every plan the static pre-check clears skips the\n"
      "executor's CheckPlan re-verification (checks-skipped column), so\n"
      "verified execution stays within noise of the baseline while each\n"
      "plan is proven well-formed before any task runs.\n");

  Banner("Indexed equivalence lookup vs reference scan", "large history");
  const std::vector<int> big_histories =
      full ? std::vector<int>{50, 200, 500, 1000, 2000}
           : std::vector<int>{20, 80, 400};
  Table lookup(
      {"#pipelines in H", "#H nodes", "#H tasks", "mode", "augment time",
       "vs scan"});
  for (int history_pipelines : big_histories) {
    core::History history;
    PipelineGenerator generator(UseCase::Higgs(), multiplier, 42);
    double clock_seconds = 0.0;
    GrowHistorySynthetically(history, generator, history_pipelines,
                             &clock_seconds);
    std::vector<core::Pipeline> probes;
    for (int i = 0; i < 5; ++i) {
      auto probe = generator.Next();
      probe.status().Abort("probe");
      probes.push_back(std::move(*probe));
    }
    const LookupOverhead scan =
        MeasureLookupOverhead(history, probes, /*use_index=*/false);
    const LookupOverhead indexed =
        MeasureLookupOverhead(history, probes, /*use_index=*/true);
    if (std::fabs(scan.plan_cost_sum - indexed.plan_cost_sum) >
        1e-6 * (1.0 + std::fabs(scan.plan_cost_sum))) {
      std::fprintf(stderr,
                   "FATAL: indexed and scan plans diverged (%f vs %f)\n",
                   indexed.plan_cost_sum, scan.plan_cost_sum);
      return 1;
    }
    lookup.AddRow({std::to_string(history_pipelines),
                   std::to_string(history.num_artifacts()),
                   std::to_string(history.num_tasks()), "scan",
                   FormatSeconds(scan.augment_seconds), "1.0x"});
    lookup.AddRow({std::to_string(history_pipelines),
                   std::to_string(history.num_artifacts()),
                   std::to_string(history.num_tasks()), "indexed",
                   FormatSeconds(indexed.augment_seconds),
                   Speedup(scan.augment_seconds, indexed.augment_seconds)});
    for (const auto& [mode, measured] :
         {std::pair<const char*, const LookupOverhead*>{"scan", &scan},
          std::pair<const char*, const LookupOverhead*>{"indexed",
                                                        &indexed}}) {
      json.AddRow("indexed_lookup")
          .Set("history_pipelines", history_pipelines)
          .Set("history_nodes", history.num_artifacts())
          .Set("history_tasks", history.num_tasks())
          .Set("mode", mode)
          .Set("augment_seconds", measured->augment_seconds)
          .Set("plan_cost_sum", measured->plan_cost_sum);
    }
  }
  lookup.Print();
  std::printf(
      "\nExpected shape: the scan path's augmentation time grows linearly\n"
      "with total history size while the indexed path tracks only the\n"
      "backward-relevant subgraph, so the gap widens with history growth\n"
      "(plan costs are asserted identical between the two paths).\n");

  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_fig9b.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
