// Regenerates Fig. 9(b): optimization overhead — the wall time the
// planner itself takes — for various <#pipelines, #history nodes> pairs,
// HYPPO vs Collab. The history is grown by running pipelines; then a
// fresh pipeline is planned repeatedly and the planning time is measured.
//
// A second section measures the execution layer's fault-hook overhead:
// the per-execution cost of consulting an armed-but-silent FaultInjector
// (zero rates) at every load/resolver/compute site, versus running with
// no injector at all. The hooks must stay within noise of the baseline.
// Pass `--json <path>` to also dump the measurements as a JSON document
// (bench/BENCH_fig9b.json is a committed snapshot).

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/hyppo.h"
#include "storage/fault_injection.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

struct Overhead {
  double plan_seconds = 0.0;
  int history_nodes = 0;
};

Overhead MeasureOverhead(const MethodFactory& factory, int history_pipelines,
                         double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  core::Runtime runtime(options);
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  std::unique_ptr<core::Method> method = factory(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  for (int i = 0; i < history_pipelines; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  // Measure planning time of fresh pipelines (5 repetitions averaged).
  Overhead overhead;
  overhead.history_nodes = runtime.history().num_artifacts();
  const int repetitions = 5;
  for (int i = 0; i < repetitions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method->PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    overhead.plan_seconds += planned->optimize_seconds;
    // Execute + record so the history keeps growing realistically.
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method->AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  overhead.plan_seconds /= repetitions;
  return overhead;
}

// Mean wall seconds per simulated plan execution, with the fault hooks
// disabled (no injector) or armed with an all-zero-rate plan (every site
// consults the injector, no fault ever fires).
double MeasureExecutionSeconds(bool with_injector, int executions,
                               double multiplier) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 64ll << 20;
  options.simulate = true;
  core::Runtime runtime(options);
  if (with_injector) {
    runtime.EnableFaultInjection(storage::FaultPlan::Uniform(42, 0.0));
  }
  const UseCase use_case = UseCase::Higgs();
  runtime.RegisterDatasetGenerator(
      use_case.DatasetId(multiplier),
      [use_case, multiplier]() {
        return GenerateUseCase(use_case, multiplier, 42);
      });
  core::HyppoMethod method(&runtime);
  PipelineGenerator generator(use_case, multiplier, 42);
  WallClock clock;
  double elapsed = 0.0;
  for (int i = 0; i < executions; ++i) {
    auto pipeline = generator.Next();
    pipeline.status().Abort("generate");
    auto planned = method.PlanPipeline(*pipeline);
    planned.status().Abort("plan");
    Stopwatch watch(clock);
    auto record =
        runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan,
                                 method.MakeReplanner());
    elapsed += watch.Elapsed();
    record.status().Abort("execute");
    method.AfterExecution(*pipeline, *planned, *record).Abort("mat");
  }
  return elapsed / executions;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  JsonWriter json("fig9b_overhead");
  Banner("Optimization overhead vs history size", "Fig. 9(b)");
  const bool full = FullScale();
  const std::vector<int> histories =
      full ? std::vector<int>{10, 25, 50, 100, 200}
           : std::vector<int>{5, 10, 20, 40};
  const double multiplier = 0.01;
  Table table({"#pipelines in H", "#H nodes", "method", "plan time"});
  for (int history : histories) {
    for (const auto& [name, factory] :
         {std::pair<const char*, MethodFactory>{"Collab",
                                                MakeCollabFactory()},
          std::pair<const char*, MethodFactory>{"HYPPO",
                                                MakeHyppoFactory()}}) {
      Overhead overhead = MeasureOverhead(factory, history, multiplier);
      table.AddRow({std::to_string(history),
                    std::to_string(overhead.history_nodes), name,
                    FormatSeconds(overhead.plan_seconds)});
      json.AddRow("plan_overhead")
          .Set("history_pipelines", history)
          .Set("history_nodes", overhead.history_nodes)
          .Set("method", name)
          .Set("plan_seconds", overhead.plan_seconds);
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): HYPPO's planner stays in the milliseconds\n"
      "and scales gracefully with history size.\n");

  Banner("Fault-hook overhead (injection disabled)", "execution layer");
  const int executions = full ? 200 : 50;
  Table hooks({"fault hooks", "mean execute time", "vs baseline"});
  const double baseline =
      MeasureExecutionSeconds(/*with_injector=*/false, executions,
                              multiplier);
  const double hooked =
      MeasureExecutionSeconds(/*with_injector=*/true, executions, multiplier);
  hooks.AddRow({"off", FormatSeconds(baseline), "1.0x"});
  hooks.AddRow({"armed, zero rate", FormatSeconds(hooked),
                Speedup(hooked, baseline)});
  hooks.Print();
  json.AddRow("fault_hook_overhead")
      .Set("mode", "off")
      .Set("executions", executions)
      .Set("mean_execute_seconds", baseline);
  json.AddRow("fault_hook_overhead")
      .Set("mode", "armed_zero_rate")
      .Set("executions", executions)
      .Set("mean_execute_seconds", hooked);
  std::printf(
      "\nExpected shape: an armed-but-silent injector takes the cold-site\n"
      "fast path (one flag check per task) and stays within noise of the\n"
      "no-injector baseline.\n");

  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_fig9b.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
