// Regenerates Fig. 10: optimizer scalability on synthetic hypergraphs.
//  (a) runtime vs number of artifacts n (m = 2 alternatives), reported as
//      [n, avg-max-path-length] pairs, for HYPPO-STACK, HYPPO-PRIORITY,
//      COLLAB-E, and the parallel plan-search engine at 2 and 8 threads,
//      next to the theoretical curves O(m^n) and O(m^{f*l}).
//  (b) runtime vs number of alternatives m at fixed n.
// All methods find the same optimal cost (verified per row). Pass
// `--json <path>` to also dump the measurements as a JSON document
// (bench/BENCH_fig10.json is a committed snapshot).

#include <cmath>
#include <limits>

#include "baselines/collab_e.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "workload/synthetic_hypergraph.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

struct Measurement {
  double seconds = 0.0;
  double cost = 0.0;
  bool ok = false;
};

Measurement TimeStrategy(const core::Augmentation& aug,
                         core::PlanGenerator::Strategy strategy,
                         int num_threads = 1) {
  core::PlanGenerator generator;
  core::PlanGenerator::Options options;
  options.strategy = strategy;
  options.num_threads = num_threads;
  options.max_expansions = 80'000'000;
  WallClock clock;
  Stopwatch watch(clock);
  auto plan = generator.Optimize(aug, options);
  Measurement m;
  m.seconds = watch.Elapsed();
  if (plan.ok()) {
    m.cost = plan->cost;
    m.ok = true;
  }
  return m;
}

Measurement TimeCollabE(const core::Augmentation& aug, int64_t budget) {
  WallClock clock;
  Stopwatch watch(clock);
  auto plan = baselines::CollabEOptimize(aug, budget);
  Measurement m;
  m.seconds = watch.Elapsed();
  if (plan.ok()) {
    m.cost = plan->cost;
    m.ok = true;
  }
  return m;
}

std::string Cell(const Measurement& m) {
  return m.ok ? FormatSeconds(m.seconds) : "timeout";
}

void Accumulate(Measurement& total, const Measurement& sample) {
  total.seconds += sample.seconds;
  total.ok = sample.ok;
  total.cost = sample.cost;
}

bool CostsAgree(const Measurement& a, const Measurement& b) {
  return !a.ok || !b.ok || std::fabs(a.cost - b.cost) < 1e-9;
}

double JsonSeconds(const Measurement& m) {
  return m.ok ? m.seconds : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Banner("Optimizer scalability on synthetic hypergraphs", "Fig. 10(a)+(b)");
  const Scale scale = BenchScale();
  const bool full = scale == Scale::kFull;
  const int repetitions =
      scale == Scale::kSmoke ? 1 : (full ? 10 : 3);
  const int64_t collab_budget = full ? 50'000'000 : 2'000'000;
  JsonWriter json("fig10_scalability");

  // (a) vary n at m = 2.
  std::printf("\n(a) varying #artifacts n (m = 2):\n");
  std::vector<int> n_sweep{6, 10, 14, 18};
  if (scale == Scale::kSmoke) {
    n_sweep = {6, 8};
  } else if (full) {
    n_sweep = {6, 10, 14, 18, 22};
  }
  Table table_a({"[n, l]", "HYPPO-STACK", "HYPPO-PRIORITY", "COLLAB-E",
                 "PARALLEL-2T", "PARALLEL-8T", "par-8T speedup", "agree",
                 "O(m^n)", "O(m^{f*l})"});
  double anchor_stack = -1.0;
  double anchor_collab = -1.0;
  double anchor_n = 0.0;
  double anchor_l = 0.0;
  for (int n : n_sweep) {
    Measurement stack;
    Measurement priority;
    Measurement collab_e;
    Measurement par2;
    Measurement par8;
    double avg_l = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
      SyntheticConfig config;
      config.num_artifacts = n;
      config.alternatives = 2;
      config.seed = 1000 + static_cast<uint64_t>(rep);
      auto synthetic = GenerateSyntheticHypergraph(config);
      synthetic.status().Abort("generate");
      avg_l += synthetic->avg_max_path_length;
      Accumulate(stack, TimeStrategy(synthetic->aug,
                                     core::PlanGenerator::Strategy::kStack));
      Accumulate(priority,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kPriority));
      const Measurement c = TimeCollabE(synthetic->aug, collab_budget);
      collab_e.seconds += c.seconds;
      collab_e.ok = collab_e.ok || c.ok;
      collab_e.cost = c.cost;
      Accumulate(par2,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kParallel, 2));
      Accumulate(par8,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kParallel, 8));
    }
    stack.seconds /= repetitions;
    priority.seconds /= repetitions;
    collab_e.seconds /= repetitions;
    par2.seconds /= repetitions;
    par8.seconds /= repetitions;
    avg_l /= repetitions;
    const bool agree = stack.ok && priority.ok && par2.ok && par8.ok &&
                       CostsAgree(stack, priority) &&
                       CostsAgree(stack, par2) && CostsAgree(stack, par8) &&
                       CostsAgree(stack, collab_e);
    if (anchor_stack < 0.0 && stack.ok && collab_e.ok) {
      anchor_stack = stack.seconds;
      anchor_collab = collab_e.seconds;
      anchor_n = n;
      anchor_l = avg_l;
    }
    // Theoretical curves anchored at the first row (as in the paper).
    const double theory_exhaustive =
        anchor_collab * std::pow(2.0, n - anchor_n);
    const double theory_optimize =
        anchor_stack * std::pow(2.0, 2.0 * (avg_l - anchor_l));
    table_a.AddRow({"[" + std::to_string(n) + ", " +
                        FormatDouble(avg_l, 1) + "]",
                    Cell(stack), Cell(priority), Cell(collab_e), Cell(par2),
                    Cell(par8),
                    par8.ok ? Speedup(priority.seconds, par8.seconds) : "-",
                    agree ? "yes" : "NO",
                    FormatSeconds(theory_exhaustive),
                    FormatSeconds(theory_optimize)});
    json.AddRow("n_sweep")
        .Set("n", n)
        .Set("avg_max_path_length", avg_l)
        .Set("hyppo_stack_seconds", JsonSeconds(stack))
        .Set("hyppo_priority_seconds", JsonSeconds(priority))
        .Set("collab_e_seconds", JsonSeconds(collab_e))
        .Set("parallel_2t_seconds", JsonSeconds(par2))
        .Set("parallel_8t_seconds", JsonSeconds(par8))
        .Set("parallel_8t_speedup_vs_priority",
             par8.ok && par8.seconds > 0.0 ? priority.seconds / par8.seconds
                                           : std::numeric_limits<
                                                 double>::quiet_NaN())
        .Set("optimal_cost", stack.ok
                                 ? stack.cost
                                 : std::numeric_limits<double>::quiet_NaN())
        .Set("agree", agree ? "yes" : "no");
  }
  table_a.Print();

  // (b) vary m at fixed n.
  const int fixed_n = scale == Scale::kSmoke ? 6 : (full ? 10 : 8);
  std::printf("\n(b) varying #alternatives m (n = %d):\n", fixed_n);
  std::vector<int> m_sweep{2, 3, 4};
  if (scale == Scale::kSmoke) {
    m_sweep = {2};
  } else if (full) {
    m_sweep = {2, 3, 4, 5, 6};
  }
  Table table_b({"m", "HYPPO-STACK", "HYPPO-PRIORITY", "COLLAB-E",
                 "PARALLEL-2T", "PARALLEL-8T", "par-8T speedup", "agree"});
  for (int m : m_sweep) {
    Measurement stack;
    Measurement priority;
    Measurement collab_e;
    Measurement par2;
    Measurement par8;
    for (int rep = 0; rep < repetitions; ++rep) {
      SyntheticConfig config;
      config.num_artifacts = fixed_n;
      config.alternatives = m;
      config.seed = 2000 + static_cast<uint64_t>(rep);
      auto synthetic = GenerateSyntheticHypergraph(config);
      synthetic.status().Abort("generate");
      Accumulate(stack, TimeStrategy(synthetic->aug,
                                     core::PlanGenerator::Strategy::kStack));
      Accumulate(priority,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kPriority));
      Accumulate(collab_e, TimeCollabE(synthetic->aug, collab_budget));
      Accumulate(par2,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kParallel, 2));
      Accumulate(par8,
                 TimeStrategy(synthetic->aug,
                              core::PlanGenerator::Strategy::kParallel, 8));
    }
    stack.seconds /= repetitions;
    priority.seconds /= repetitions;
    collab_e.seconds /= repetitions;
    par2.seconds /= repetitions;
    par8.seconds /= repetitions;
    const bool agree = stack.ok && priority.ok && par2.ok && par8.ok &&
                       CostsAgree(stack, priority) &&
                       CostsAgree(stack, par2) && CostsAgree(stack, par8) &&
                       CostsAgree(stack, collab_e);
    table_b.AddRow({std::to_string(m), Cell(stack), Cell(priority),
                    Cell(collab_e), Cell(par2), Cell(par8),
                    par8.ok ? Speedup(priority.seconds, par8.seconds) : "-",
                    agree ? "yes" : "NO"});
    json.AddRow("m_sweep")
        .Set("m", m)
        .Set("n", fixed_n)
        .Set("hyppo_stack_seconds", JsonSeconds(stack))
        .Set("hyppo_priority_seconds", JsonSeconds(priority))
        .Set("collab_e_seconds", JsonSeconds(collab_e))
        .Set("parallel_2t_seconds", JsonSeconds(par2))
        .Set("parallel_8t_seconds", JsonSeconds(par8))
        .Set("parallel_8t_speedup_vs_priority",
             par8.ok && par8.seconds > 0.0 ? priority.seconds / par8.seconds
                                           : std::numeric_limits<
                                                 double>::quiet_NaN())
        .Set("optimal_cost", stack.ok
                                 ? stack.cost
                                 : std::numeric_limits<double>::quiet_NaN())
        .Set("agree", agree ? "yes" : "no");
  }
  table_b.Print();
  std::printf(
      "\nExpected shape (paper): COLLAB-E blows up exponentially in n and\n"
      "m; the HYPPO variants stay far cheaper, with HYPPO-PRIORITY the most\n"
      "scalable of the serial variants and the parallel engine ahead of it\n"
      "(shared-bound pruning + full-state dominance dedup + state pooling);\n"
      "all methods return the same optimal plan cost.\n");
  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_fig10.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
