// Regenerates Fig. 10: optimizer scalability on synthetic hypergraphs.
//  (a) runtime vs number of artifacts n (m = 2 alternatives), reported as
//      [n, avg-max-path-length] pairs, for HYPPO-STACK, HYPPO-PRIORITY,
//      and COLLAB-E, next to the theoretical curves O(m^n) and O(m^{f*l}).
//  (b) runtime vs number of alternatives m at fixed n.
// All three methods find the same optimal cost (verified per row).

#include <cmath>

#include "baselines/collab_e.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "workload/synthetic_hypergraph.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

struct Measurement {
  double seconds = 0.0;
  double cost = 0.0;
  bool ok = false;
};

Measurement TimeStrategy(const core::Augmentation& aug,
                         core::PlanGenerator::Strategy strategy) {
  core::PlanGenerator generator;
  core::PlanGenerator::Options options;
  options.strategy = strategy;
  options.max_expansions = 80'000'000;
  WallClock clock;
  Stopwatch watch(clock);
  auto plan = generator.Optimize(aug, options);
  Measurement m;
  m.seconds = watch.Elapsed();
  if (plan.ok()) {
    m.cost = plan->cost;
    m.ok = true;
  }
  return m;
}

Measurement TimeCollabE(const core::Augmentation& aug, int64_t budget) {
  WallClock clock;
  Stopwatch watch(clock);
  auto plan = baselines::CollabEOptimize(aug, budget);
  Measurement m;
  m.seconds = watch.Elapsed();
  if (plan.ok()) {
    m.cost = plan->cost;
    m.ok = true;
  }
  return m;
}

std::string Cell(const Measurement& m) {
  return m.ok ? FormatSeconds(m.seconds) : "timeout";
}

}  // namespace

int main() {
  Banner("Optimizer scalability on synthetic hypergraphs", "Fig. 10(a)+(b)");
  const bool full = FullScale();
  const int repetitions = full ? 10 : 3;

  // (a) vary n at m = 2.
  std::printf("\n(a) varying #artifacts n (m = 2):\n");
  const std::vector<int> n_sweep = full
                                       ? std::vector<int>{6, 10, 14, 18, 22}
                                       : std::vector<int>{6, 10, 14, 18};
  Table table_a({"[n, l]", "HYPPO-STACK", "HYPPO-PRIORITY", "COLLAB-E",
                 "agree", "O(m^n)", "O(m^{f*l})"});
  double anchor_stack = -1.0;
  double anchor_collab = -1.0;
  double anchor_n = 0.0;
  double anchor_l = 0.0;
  for (int n : n_sweep) {
    Measurement stack;
    Measurement priority;
    Measurement collab_e;
    double avg_l = 0.0;
    for (int rep = 0; rep < repetitions; ++rep) {
      SyntheticConfig config;
      config.num_artifacts = n;
      config.alternatives = 2;
      config.seed = 1000 + static_cast<uint64_t>(rep);
      auto synthetic = GenerateSyntheticHypergraph(config);
      synthetic.status().Abort("generate");
      avg_l += synthetic->avg_max_path_length;
      Measurement s =
          TimeStrategy(synthetic->aug, core::PlanGenerator::Strategy::kStack);
      Measurement p = TimeStrategy(synthetic->aug,
                                   core::PlanGenerator::Strategy::kPriority);
      Measurement c = TimeCollabE(synthetic->aug, full ? 50'000'000
                                                       : 2'000'000);
      stack.seconds += s.seconds;
      priority.seconds += p.seconds;
      collab_e.seconds += c.seconds;
      stack.ok = s.ok;
      priority.ok = p.ok;
      collab_e.ok = collab_e.ok || c.ok;
      stack.cost = s.cost;
      priority.cost = p.cost;
      collab_e.cost = c.cost;
    }
    stack.seconds /= repetitions;
    priority.seconds /= repetitions;
    collab_e.seconds /= repetitions;
    avg_l /= repetitions;
    const bool agree =
        stack.ok && priority.ok &&
        std::fabs(stack.cost - priority.cost) < 1e-9 &&
        (!collab_e.ok || std::fabs(stack.cost - collab_e.cost) < 1e-9);
    if (anchor_stack < 0.0 && stack.ok && collab_e.ok) {
      anchor_stack = stack.seconds;
      anchor_collab = collab_e.seconds;
      anchor_n = n;
      anchor_l = avg_l;
    }
    // Theoretical curves anchored at the first row (as in the paper).
    const double theory_exhaustive =
        anchor_collab * std::pow(2.0, n - anchor_n);
    const double theory_optimize =
        anchor_stack * std::pow(2.0, 2.0 * (avg_l - anchor_l));
    table_a.AddRow({"[" + std::to_string(n) + ", " +
                        FormatDouble(avg_l, 1) + "]",
                    Cell(stack), Cell(priority), Cell(collab_e),
                    agree ? "yes" : "NO",
                    FormatSeconds(theory_exhaustive),
                    FormatSeconds(theory_optimize)});
  }
  table_a.Print();

  // (b) vary m at fixed n.
  const int fixed_n = full ? 10 : 8;
  std::printf("\n(b) varying #alternatives m (n = %d):\n", fixed_n);
  const std::vector<int> m_sweep =
      full ? std::vector<int>{2, 3, 4, 5, 6} : std::vector<int>{2, 3, 4};
  Table table_b({"m", "HYPPO-STACK", "HYPPO-PRIORITY", "COLLAB-E", "agree"});
  for (int m : m_sweep) {
    Measurement stack;
    Measurement priority;
    Measurement collab_e;
    for (int rep = 0; rep < repetitions; ++rep) {
      SyntheticConfig config;
      config.num_artifacts = fixed_n;
      config.alternatives = m;
      config.seed = 2000 + static_cast<uint64_t>(rep);
      auto synthetic = GenerateSyntheticHypergraph(config);
      synthetic.status().Abort("generate");
      Measurement s =
          TimeStrategy(synthetic->aug, core::PlanGenerator::Strategy::kStack);
      Measurement p = TimeStrategy(synthetic->aug,
                                   core::PlanGenerator::Strategy::kPriority);
      Measurement c = TimeCollabE(synthetic->aug, full ? 50'000'000
                                                       : 2'000'000);
      stack.seconds += s.seconds;
      priority.seconds += p.seconds;
      collab_e.seconds += c.seconds;
      stack.ok = s.ok;
      priority.ok = p.ok;
      collab_e.ok = c.ok;
      stack.cost = s.cost;
      priority.cost = p.cost;
      collab_e.cost = c.cost;
    }
    stack.seconds /= repetitions;
    priority.seconds /= repetitions;
    collab_e.seconds /= repetitions;
    const bool agree =
        stack.ok && priority.ok &&
        std::fabs(stack.cost - priority.cost) < 1e-9 &&
        (!collab_e.ok || std::fabs(stack.cost - collab_e.cost) < 1e-9);
    table_b.AddRow({std::to_string(m), Cell(stack), Cell(priority),
                    Cell(collab_e), agree ? "yes" : "NO"});
  }
  table_b.Print();
  std::printf(
      "\nExpected shape (paper): COLLAB-E blows up exponentially in n and\n"
      "m; the HYPPO variants stay far cheaper, with HYPPO-PRIORITY the most\n"
      "scalable; all methods return the same optimal plan cost.\n");
  return 0;
}
