#include "bench_util.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace hyppo::bench {

namespace {

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kReduced:
      return "reduced";
    case Scale::kFull:
      return "full";
  }
  return "unknown";
}

// JSON string escaping lives in common/string_util (hyppo::JsonEscape);
// unqualified calls below resolve to it through the enclosing namespace.

}  // namespace

Scale BenchScale() {
  const char* scale = std::getenv("HYPPO_BENCH_SCALE");
  if (scale == nullptr) {
    return Scale::kReduced;
  }
  if (std::strcmp(scale, "full") == 0) {
    return Scale::kFull;
  }
  if (std::strcmp(scale, "smoke") == 0) {
    return Scale::kSmoke;
  }
  return Scale::kReduced;
}

bool FullScale() { return BenchScale() == Scale::kFull; }

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.json_path = argv[++i];
      } else {
        args.json_default = true;
      }
    }
  }
  return args;
}

std::string BenchOutputDir() {
  const char* env = std::getenv("HYPPO_BENCH_OUT");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  struct stat st{};
  if (stat("bench", &st) == 0 && (st.st_mode & S_IFDIR) != 0) {
    return "bench";
  }
  return ".";
}

std::string ResolveJsonPath(const BenchArgs& args,
                            const std::string& default_filename) {
  if (!args.json_path.empty()) {
    return args.json_path;
  }
  if (args.json_default) {
    return BenchOutputDir() + "/" + default_filename;
  }
  return std::string();
}

JsonWriter::JsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

JsonWriter::Row& JsonWriter::Row::Set(const std::string& key, double value) {
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    fields_.emplace_back(key, buf);
  } else {
    fields_.emplace_back(key, "null");
  }
  return *this;
}

JsonWriter::Row& JsonWriter::Row::Set(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter::Row& JsonWriter::AddRow(const std::string& section) {
  for (Section& s : sections_) {
    if (s.name == section) {
      return s.rows.emplace_back();
    }
  }
  Section& s = sections_.emplace_back();
  s.name = section;
  return s.rows.emplace_back();
}

bool JsonWriter::WriteTo(const std::string& path) const {
  if (path.empty()) {
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench: cannot write JSON to %s\n", path.c_str());
    return false;
  }
  std::fprintf(file, "{\"bench\": \"%s\", \"scale\": \"%s\", \"sections\": [",
               JsonEscape(bench_name_).c_str(), ScaleName(BenchScale()));
  bool first_section = true;
  for (const Section& s : sections_) {
    std::fprintf(file, "%s\n  {\"section\": \"%s\", \"rows\": [",
                 first_section ? "" : ",", JsonEscape(s.name).c_str());
    first_section = false;
    bool first_row = true;
    for (const Row& row : s.rows) {
      std::fprintf(file, "%s\n    {", first_row ? "" : ",");
      first_row = false;
      bool first_field = true;
      for (const auto& [key, encoded] : row.fields_) {
        std::fprintf(file, "%s\"%s\": %s", first_field ? "" : ", ",
                     JsonEscape(key).c_str(), encoded.c_str());
        first_field = false;
      }
      std::fprintf(file, "}");
    }
    std::fprintf(file, "\n  ]}");
  }
  std::fprintf(file, "\n]}\n");
  std::fclose(file);
  std::printf("JSON results written to %s\n", path.c_str());
  return true;
}

void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s   [scale: %s]\n", paper_ref.c_str(),
              ScaleName(BenchScale()));
  std::printf("================================================================\n");
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append("  ");
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Speedup(double baseline, double value) {
  if (value <= 0.0) {
    return "-";
  }
  return FormatDouble(baseline / value, 2) + "x";
}

}  // namespace hyppo::bench
