#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace hyppo::bench {

bool FullScale() {
  const char* scale = std::getenv("HYPPO_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "full") == 0;
}

void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s   [scale: %s]\n", paper_ref.c_str(),
              FullScale() ? "full (paper)" : "reduced (default)");
  std::printf("================================================================\n");
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append("  ");
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Speedup(double baseline, double value) {
  if (value <= 0.0) {
    return "-";
  }
  return FormatDouble(baseline / value, 2) + "x";
}

}  // namespace hyppo::bench
