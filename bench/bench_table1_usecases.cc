// Regenerates Table I: the two Kaggle use cases with team counts and
// dataset shapes, plus verification that our synthetic generators deliver
// the declared shapes at paper scale factors.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/datagen.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Use cases", "Table I");
  Table table({"Usecase", "T", "S (rows, cols)", "task", "metric",
               "description"});
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    table.AddRow({use_case.name, std::to_string(use_case.teams),
                  "(" + std::to_string(use_case.paper_rows) + ", " +
                      std::to_string(use_case.paper_cols) + ")",
                  use_case.classification ? "classification" : "regression",
                  use_case.default_metric, use_case.description});
  }
  table.Print();

  const double multiplier = FullScale() ? 0.2 : 0.01;
  std::printf("\ngenerator check at dataset_multiplier=%s:\n",
              FormatDouble(multiplier, 3).c_str());
  Table check({"dataset", "rows", "cols", "bytes", "target"});
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    auto data = GenerateUseCase(use_case, multiplier, 42);
    data.status().Abort("generate");
    check.AddRow({use_case.DatasetId(multiplier),
                  std::to_string((*data)->rows()),
                  std::to_string((*data)->cols()),
                  FormatBytes(static_cast<double>((*data)->SizeBytes())),
                  (*data)->has_target() ? "yes" : "no"});
  }
  check.Print();
  return 0;
}
