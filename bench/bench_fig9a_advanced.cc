// Regenerates Fig. 9(a): "advanced analysis" — ensemble workloads
// (StackingRegressor / VotingRegressor) over models trained by a
// pre-built TAXI history. Reusing previously trained base models is where
// HYPPO's equivalence-aware reuse shines (the paper reports up to 50x vs
// Collab's 1.4x).

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Advanced analysis: ensembles over past models", "Fig. 9(a)");
  const bool full = FullScale();
  const int history = full ? 100 : 20;
  const std::vector<int> sweeps = full ? std::vector<int>{10, 25, 50, 100}
                                       : std::vector<int>{4, 8, 12};
  const std::pair<const char*, MethodFactory> methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  Table table({"#ensemble pipelines", "method", "cet (s)", "speedup"});
  for (int ensembles : sweeps) {
    double baseline = 0.0;
    for (const auto& [name, factory] : methods) {
      EnsembleConfig config;
      config.history_pipelines = history;
      config.ensemble_pipelines = ensembles;
      config.budget_factor = 0.1;
      config.dataset_multiplier = full ? 0.1 : 0.01;
      config.seed = 42;
      config.simulate = true;
      auto result = RunEnsembleScenario(factory, config);
      result.status().Abort(name);
      if (std::string(name) == "NoOptimization") {
        baseline = result->cumulative_seconds;
      }
      table.AddRow({std::to_string(ensembles), name,
                    FormatDouble(result->cumulative_seconds, 2),
                    Speedup(baseline, result->cumulative_seconds)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): HYPPO reaches order-of-magnitude speed-ups\n"
      "by reusing past trained models for the ensembles, while Collab\n"
      "stays below ~1.4x.\n");
  return 0;
}
