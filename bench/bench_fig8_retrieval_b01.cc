// Regenerates Fig. 8: retrieval of artifacts/models with B = 0.1 x dataset
// size. Materialization now helps both Collab and HYPPO; HYPPO stores a
// larger effective fraction of the history because equivalent artifacts
// share storage.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Artifact and model retrieval, B = 0.1", "Fig. 8");
  const bool full = FullScale();
  const int history = full ? 50 : 20;
  const double multiplier = full ? 0.1 : 0.01;
  const std::vector<int> request_sizes =
      full ? std::vector<int>{1, 2, 4, 8, 16} : std::vector<int>{1, 2, 4, 8};
  const std::pair<const char*, MethodFactory> methods[] = {
      {"Sharing", MakeSharingFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    for (bool models_only : {false, true}) {
      std::printf("\n--- %s, requesting %s ---\n", use_case.name.c_str(),
                  models_only ? "models" : "artifacts");
      Table table({"#requested", "method", "mean retrieval (s)", "speedup",
                   "stored frac"});
      for (int request_size : request_sizes) {
        double baseline = 0.0;
        for (const auto& [name, factory] : methods) {
          RetrievalConfig config;
          config.use_case = use_case;
          config.history_pipelines = history;
          config.budget_factor = 0.1;
          config.dataset_multiplier = multiplier;
          config.seed = 42;
          config.simulate = true;
          config.request_size = request_size;
          config.num_requests = full ? 200 : 30;
          config.models_only = models_only;
          auto result = RunRetrievalScenario(factory, config);
          result.status().Abort(name);
          if (std::string(name) == "Sharing") {
            baseline = result->mean_request_seconds;
          }
          table.AddRow(
              {std::to_string(request_size), name,
               FormatDouble(result->mean_request_seconds, 4),
               Speedup(baseline, result->mean_request_seconds),
               FormatDouble(100.0 * result->stored_fraction, 1) + "%"});
        }
      }
      table.Print();
    }
  }
  std::printf(
      "\nExpected shape (paper): materialization gives both Collab and\n"
      "HYPPO large gains over Sharing; HYPPO keeps the edge and covers a\n"
      "larger fraction of the history within the same budget.\n");
  return 0;
}
