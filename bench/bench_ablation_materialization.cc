// Ablation (beyond the paper's figures, motivated by §III-D2): compares
// the SPF materialization policy against the LRU / LFU / SFF alternatives
// the paper lists as goodness-measure candidates, and isolates the effect
// of the plan-locality coefficient pl(v).

#include "bench_util.h"
#include "common/string_util.h"
#include "core/hyppo.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

MethodFactory MakeHyppoWithPolicy(core::Materializer::Policy policy,
                                  bool plan_locality) {
  return [policy, plan_locality](core::Runtime* runtime)
             -> std::unique_ptr<core::Method> {
    core::HyppoMethod::Options options;
    options.materialization.policy = policy;
    options.materialization.use_plan_locality = plan_locality;
    return std::make_unique<core::HyppoMethod>(runtime, options);
  };
}

}  // namespace

int main() {
  Banner("Materialization policy ablation", "§III-D2 (SPF vs LRU/LFU/SFF)");
  const bool full = FullScale();
  const std::pair<const char*, MethodFactory> policies[] = {
      {"SPF + pl (paper)", MakeHyppoWithPolicy(
                               core::Materializer::Policy::kSpf, true)},
      {"SPF, no pl", MakeHyppoWithPolicy(core::Materializer::Policy::kSpf,
                                         false)},
      {"LRU", MakeHyppoWithPolicy(core::Materializer::Policy::kLru, true)},
      {"LFU", MakeHyppoWithPolicy(core::Materializer::Policy::kLfu, true)},
      {"SFF", MakeHyppoWithPolicy(core::Materializer::Policy::kSff, true)},
  };
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    std::printf("\n--- %s ---\n", use_case.name.c_str());
    Table table({"policy", "cet (s)", "vs SPF+pl", "stored artifacts"});
    double reference = 0.0;
    for (const auto& [name, factory] : policies) {
      ScenarioConfig config;
      config.use_case = use_case;
      config.num_pipelines = full ? 50 : 25;
      config.budget_factor = 0.01;  // tight budget: policies matter
      config.dataset_multiplier = full ? 0.1 : 0.01;
      config.seed = 42;
      config.simulate = true;
      auto result = RunIterativeScenario(factory, config);
      result.status().Abort(name);
      if (reference == 0.0) {
        reference = result->cumulative_seconds;
      }
      table.AddRow({name, FormatDouble(result->cumulative_seconds, 2),
                    Speedup(result->cumulative_seconds, reference),
                    std::to_string(result->stored_artifacts)});
    }
    table.Print();
  }
  std::printf(
      "\nExpected: the SPF gain ranks at or near the top under tight\n"
      "budgets; size-only (SFF) and recency-only (LRU) policies trail.\n");
  return 0;
}
