#ifndef HYPPO_BENCH_BENCH_UTIL_H_
#define HYPPO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace hyppo::bench {

/// Bench problem sizes, selected by the HYPPO_BENCH_SCALE environment
/// variable: "full" = paper-scale parameters (much slower), "smoke" =
/// seconds-scale configurations for CI, anything else = the reduced
/// default that finishes in minutes while preserving the figures' shapes.
enum class Scale { kSmoke, kReduced, kFull };
Scale BenchScale();

/// True when HYPPO_BENCH_SCALE=full (equivalent to
/// BenchScale() == Scale::kFull).
bool FullScale();

/// Common command-line arguments shared by the bench binaries.
struct BenchArgs {
  /// Destination for the machine-readable results (--json <path>); empty
  /// means text output only unless `json_default` is set.
  std::string json_path;
  /// `--json` was passed without a path: write to the bench output
  /// directory under the bench's default filename (see ResolveJsonPath).
  bool json_default = false;
};

/// Parses `--json [<path>]`; unknown arguments are ignored so benches can
/// layer their own flags on top. A bare `--json` (no path, or followed by
/// another flag) requests the default output location.
BenchArgs ParseBenchArgs(int argc, char** argv);

/// Directory where committed bench snapshots live: $HYPPO_BENCH_OUT if
/// set, else "bench" when that directory exists (running from the repo
/// root), else ".".
std::string BenchOutputDir();

/// The JSON destination for a bench: the explicit --json path when one was
/// given, `<BenchOutputDir()>/<default_filename>` for a bare `--json`, and
/// empty (no JSON output) when --json was absent.
std::string ResolveJsonPath(const BenchArgs& args,
                            const std::string& default_filename);

/// \brief Accumulates bench measurements and serializes them as a single
/// JSON document:
///   {"bench": <name>, "scale": <scale>, "sections": [
///     {"section": <s>, "rows": [{...}, ...]}, ...]}
/// Row values keep insertion order. Non-finite doubles serialize as null.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name);

  class Row {
   public:
    Row& Set(const std::string& key, double value);
    Row& Set(const std::string& key, const std::string& value);

   private:
    friend class JsonWriter;
    // (key, encoded JSON value) in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends a row to `section` (sections appear in first-use order).
  /// The reference stays valid for the writer's lifetime.
  Row& AddRow(const std::string& section);

  /// Writes the document to `path`; no-op when `path` is empty.
  /// Returns false (after printing a diagnostic) if the file cannot be
  /// written.
  bool WriteTo(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::deque<Row> rows;  // deque: AddRow references must stay stable
  };

  std::string bench_name_;
  std::deque<Section> sections_;
};

/// Prints a banner naming the experiment and which paper artifact it
/// regenerates.
void Banner(const std::string& title, const std::string& paper_ref);

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a speed-up factor ("12.3x").
std::string Speedup(double baseline, double value);

}  // namespace hyppo::bench

#endif  // HYPPO_BENCH_BENCH_UTIL_H_
