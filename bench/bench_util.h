#ifndef HYPPO_BENCH_BENCH_UTIL_H_
#define HYPPO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace hyppo::bench {

/// True when HYPPO_BENCH_SCALE=full: paper-scale parameters (much slower).
/// Default benches run reduced configurations so the whole suite finishes
/// in minutes while preserving the figures' shapes.
bool FullScale();

/// Prints a banner naming the experiment and which paper artifact it
/// regenerates.
void Banner(const std::string& title, const std::string& paper_ref);

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a speed-up factor ("12.3x").
std::string Speedup(double baseline, double value);

}  // namespace hyppo::bench

#endif  // HYPPO_BENCH_BENCH_UTIL_H_
