#ifndef HYPPO_BENCH_BENCH_UTIL_H_
#define HYPPO_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace hyppo::bench {

/// Bench problem sizes, selected by the HYPPO_BENCH_SCALE environment
/// variable: "full" = paper-scale parameters (much slower), "smoke" =
/// seconds-scale configurations for CI, anything else = the reduced
/// default that finishes in minutes while preserving the figures' shapes.
enum class Scale { kSmoke, kReduced, kFull };
Scale BenchScale();

/// True when HYPPO_BENCH_SCALE=full (equivalent to
/// BenchScale() == Scale::kFull).
bool FullScale();

/// Common command-line arguments shared by the bench binaries.
struct BenchArgs {
  /// Destination for the machine-readable results (--json <path>); empty
  /// means text output only.
  std::string json_path;
};

/// Parses `--json <path>`; unknown arguments are ignored so benches can
/// layer their own flags on top.
BenchArgs ParseBenchArgs(int argc, char** argv);

/// \brief Accumulates bench measurements and serializes them as a single
/// JSON document:
///   {"bench": <name>, "scale": <scale>, "sections": [
///     {"section": <s>, "rows": [{...}, ...]}, ...]}
/// Row values keep insertion order. Non-finite doubles serialize as null.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name);

  class Row {
   public:
    Row& Set(const std::string& key, double value);
    Row& Set(const std::string& key, const std::string& value);

   private:
    friend class JsonWriter;
    // (key, encoded JSON value) in insertion order.
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends a row to `section` (sections appear in first-use order).
  /// The reference stays valid for the writer's lifetime.
  Row& AddRow(const std::string& section);

  /// Writes the document to `path`; no-op when `path` is empty.
  /// Returns false (after printing a diagnostic) if the file cannot be
  /// written.
  bool WriteTo(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::deque<Row> rows;  // deque: AddRow references must stay stable
  };

  std::string bench_name_;
  std::deque<Section> sections_;
};

/// Prints a banner naming the experiment and which paper artifact it
/// regenerates.
void Banner(const std::string& title, const std::string& paper_ref);

/// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a speed-up factor ("12.3x").
std::string Speedup(double baseline, double value);

}  // namespace hyppo::bench

#endif  // HYPPO_BENCH_BENCH_UTIL_H_
