// Regenerates Fig. 3: cumulative execution time (cet) and monetary price
// with a varying number of exploratory pipelines, for both use cases and
// all methods (NoOptimization, Helix, Collab, HYPPO). Storage budget is
// fixed at B = 0.1 x dataset size. Values in parentheses are speed-ups
// over NoOptimization, the quantity the paper annotates on its bars.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

void RunUseCase(const UseCase& use_case, const std::vector<int>& sweeps,
                double multiplier) {
  std::printf("\n--- %s (dataset_multiplier=%s, B=0.1) ---\n",
              use_case.name.c_str(), FormatDouble(multiplier, 4).c_str());
  const std::pair<const char*, MethodFactory> methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory()},
      {"Helix", MakeHelixFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  Table table({"#pipelines", "method", "cet (s)", "speedup",
               "price (EUR)", "price speedup"});
  for (int num_pipelines : sweeps) {
    ScenarioConfig config;
    config.use_case = use_case;
    config.num_pipelines = num_pipelines;
    config.budget_factor = 0.1;
    config.dataset_multiplier = multiplier;
    config.seed = 42;
    config.simulate = true;
    double baseline_cet = 0.0;
    double baseline_price = 0.0;
    for (const auto& [name, factory] : methods) {
      auto result = RunIterativeScenario(factory, config);
      result.status().Abort(name);
      if (std::string(name) == "NoOptimization") {
        baseline_cet = result->cumulative_seconds;
        baseline_price = result->price_eur;
      }
      table.AddRow({std::to_string(num_pipelines), name,
                    FormatDouble(result->cumulative_seconds, 2),
                    Speedup(baseline_cet, result->cumulative_seconds),
                    FormatDouble(result->price_eur, 4),
                    Speedup(baseline_price, result->price_eur)});
    }
  }
  table.Print();
}

}  // namespace

int main() {
  Banner("Iterative pipeline execution: varying #pipelines", "Fig. 3");
  const bool full = FullScale();
  const std::vector<int> sweeps =
      full ? std::vector<int>{10, 20, 30, 40, 50}
           : std::vector<int>{5, 10, 15, 20};
  const double multiplier = full ? 0.1 : 0.01;
  RunUseCase(UseCase::Higgs(), sweeps, multiplier);
  RunUseCase(UseCase::Taxi(), sweeps, multiplier);
  std::printf(
      "\nExpected shape (paper): HYPPO > Collab > Helix > NoOptimization;\n"
      "HYPPO gains even on the first pipelines (equivalences) and its\n"
      "speed-up grows with #pipelines.\n");
  return 0;
}
