// Regenerates Fig. 7: retrieval time of k artifacts / k fitted models from
// a steady-state history, with storage budget B = 0 (materialization
// disabled). With nothing stored, the gap between methods isolates the
// benefit of equivalence-aware planning: Collab degenerates to Sharing
// while HYPPO exploits alternative derivations.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;

void Sweep(const UseCase& use_case, bool models_only, int history_pipelines,
           double multiplier, const std::vector<int>& request_sizes,
           double budget_factor) {
  std::printf("\n--- %s, requesting %s (B=%s) ---\n", use_case.name.c_str(),
              models_only ? "models" : "artifacts",
              FormatDouble(budget_factor, 2).c_str());
  const std::pair<const char*, MethodFactory> methods[] = {
      {"Sharing", MakeSharingFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  Table table({"#requested", "method", "mean retrieval (s)", "speedup",
               "stored frac"});
  for (int request_size : request_sizes) {
    double baseline = 0.0;
    for (const auto& [name, factory] : methods) {
      RetrievalConfig config;
      config.use_case = use_case;
      config.history_pipelines = history_pipelines;
      config.budget_factor = budget_factor;
      config.dataset_multiplier = multiplier;
      config.seed = 42;
      config.simulate = true;
      config.request_size = request_size;
      config.num_requests = FullScale() ? 200 : 30;
      config.models_only = models_only;
      auto result = RunRetrievalScenario(factory, config);
      result.status().Abort(name);
      if (std::string(name) == "Sharing") {
        baseline = result->mean_request_seconds;
      }
      table.AddRow({std::to_string(request_size), name,
                    FormatDouble(result->mean_request_seconds, 4),
                    Speedup(baseline, result->mean_request_seconds),
                    FormatDouble(100.0 * result->stored_fraction, 1) + "%"});
    }
  }
  table.Print();
}

}  // namespace

int main() {
  Banner("Artifact and model retrieval, zero storage", "Fig. 7");
  const bool full = FullScale();
  const int history = full ? 50 : 20;
  const double multiplier = full ? 0.1 : 0.01;
  const std::vector<int> request_sizes =
      full ? std::vector<int>{1, 2, 4, 8, 16} : std::vector<int>{1, 2, 4, 8};
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    Sweep(use_case, /*models_only=*/false, history, multiplier,
          request_sizes, /*budget_factor=*/0.0);
    Sweep(use_case, /*models_only=*/true, history, multiplier, request_sizes,
          /*budget_factor=*/0.0);
  }
  std::printf(
      "\nExpected shape (paper): with B=0, Collab ~ Sharing (1.2-1.5x at\n"
      "best) while HYPPO reaches ~3-4x via equivalent alternative plans;\n"
      "gains shrink when only (expensive, unshared) models are requested.\n");
  return 0;
}
