// Ablation of the plan-search variants (§IV-E): runtime and plan quality
// of HYPPO-STACK / HYPPO-PRIORITY / the A* extension / the greedy
// linear-time variant, the effect of dominance pruning, and the
// exploration knob c_exp.

#include <cmath>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/optimizer.h"
#include "workload/synthetic_hypergraph.h"

namespace {

using namespace hyppo;
using namespace hyppo::bench;
using namespace hyppo::workload;
using Strategy = core::PlanGenerator::Strategy;

struct Row {
  double seconds = 0.0;
  double cost = 0.0;
  int64_t expansions = 0;
};

Row Measure(const core::Augmentation& aug, Strategy strategy,
            bool dominance, double exploration = 0.0, int num_threads = 1) {
  core::PlanGenerator generator;
  core::PlanGenerator::Options options;
  options.strategy = strategy;
  options.dominance_pruning = dominance;
  options.exploration = exploration;
  options.num_threads = num_threads;
  core::PlanGenerator::SearchStats stats;
  WallClock clock;
  Stopwatch watch(clock);
  auto plan = generator.Optimize(aug, options, &stats);
  plan.status().Abort("optimize");
  Row row;
  row.seconds = watch.Elapsed();
  row.cost = plan->cost;
  row.expansions = stats.expansions;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Banner("Plan-search ablation", "§IV-E variants and extensions");
  const Scale scale = BenchScale();
  const bool full = scale == Scale::kFull;
  const int n = scale == Scale::kSmoke ? 8 : (full ? 18 : 14);
  const int m = 2;
  const int repetitions = scale == Scale::kSmoke ? 1 : (full ? 10 : 4);
  JsonWriter json("ablation_optimizer");

  Table strategies({"variant", "mean time", "mean expansions", "cost gap"});
  struct Variant {
    const char* name;
    Strategy strategy;
    bool dominance;
    int num_threads;
  };
  const Variant variants[] = {
      {"STACK", Strategy::kStack, false, 1},
      {"STACK + dominance", Strategy::kStack, true, 1},
      {"PRIORITY", Strategy::kPriority, false, 1},
      {"PRIORITY + dominance", Strategy::kPriority, true, 1},
      {"A* (extension)", Strategy::kAStar, false, 1},
      {"PARALLEL (2 threads)", Strategy::kParallel, true, 2},
      {"PARALLEL (8 threads)", Strategy::kParallel, true, 8},
      {"GREEDY (linear)", Strategy::kGreedy, false, 1},
  };
  std::vector<double> totals(std::size(variants), 0.0);
  std::vector<double> expansions(std::size(variants), 0.0);
  std::vector<double> gaps(std::size(variants), 0.0);
  for (int rep = 0; rep < repetitions; ++rep) {
    SyntheticConfig config;
    config.num_artifacts = n;
    config.alternatives = m;
    config.seed = 500 + static_cast<uint64_t>(rep);
    auto synthetic = GenerateSyntheticHypergraph(config);
    synthetic.status().Abort("generate");
    double optimal = -1.0;
    for (size_t i = 0; i < std::size(variants); ++i) {
      Row row = Measure(synthetic->aug, variants[i].strategy,
                        variants[i].dominance, /*exploration=*/0.0,
                        variants[i].num_threads);
      totals[i] += row.seconds;
      expansions[i] += static_cast<double>(row.expansions);
      if (optimal < 0.0) {
        optimal = row.cost;
      }
      gaps[i] += row.cost / optimal - 1.0;
    }
  }
  for (size_t i = 0; i < std::size(variants); ++i) {
    strategies.AddRow(
        {variants[i].name, FormatSeconds(totals[i] / repetitions),
         FormatDouble(expansions[i] / repetitions, 0),
         FormatDouble(100.0 * gaps[i] / repetitions, 2) + "%"});
    json.AddRow("variants")
        .Set("variant", variants[i].name)
        .Set("mean_seconds", totals[i] / repetitions)
        .Set("mean_expansions", expansions[i] / repetitions)
        .Set("cost_gap_percent", 100.0 * gaps[i] / repetitions);
  }
  std::printf("\nsearch variants on synthetic graphs (n=%d, m=%d):\n", n, m);
  strategies.Print();

  // Exploration knob: forcing new tasks raises plan cost monotonically.
  std::printf("\nexploration knob c_exp (plan cost vs exploitation):\n");
  SyntheticConfig config;
  config.num_artifacts = 12;
  config.alternatives = 2;
  config.seed = 99;
  auto synthetic = GenerateSyntheticHypergraph(config);
  synthetic.status().Abort("generate");
  // Mark half the edges as new tasks.
  for (EdgeId e : synthetic->aug.graph.hypergraph().LiveEdges()) {
    if (e % 2 == 0 &&
        synthetic->aug.graph.task(e).type != core::TaskType::kLoad) {
      synthetic->aug.new_tasks.push_back(e);
    }
  }
  Table knob({"c_exp", "plan cost", "vs exploitation"});
  double exploitation_cost = -1.0;
  for (double c_exp : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    Row row =
        Measure(synthetic->aug, Strategy::kPriority, false, c_exp);
    if (exploitation_cost < 0.0) {
      exploitation_cost = row.cost;
    }
    knob.AddRow({FormatDouble(c_exp, 2), FormatDouble(row.cost, 3),
                 "+" + FormatDouble(
                           100.0 * (row.cost / exploitation_cost - 1.0), 1) +
                     "%"});
    json.AddRow("exploration_knob")
        .Set("c_exp", c_exp)
        .Set("plan_cost", row.cost)
        .Set("vs_exploitation_percent",
             100.0 * (row.cost / exploitation_cost - 1.0));
  }
  knob.Print();
  std::printf(
      "\nExpected: dominance pruning and A* cut expansions without\n"
      "changing plan cost; GREEDY trades a small cost gap for linear time;\n"
      "plan cost grows with c_exp (the price of exploration).\n");
  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_ablation_optimizer.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
