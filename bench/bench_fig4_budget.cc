// Regenerates Fig. 4: execution-time and price speed-ups with a varying
// storage budget B (as a fraction of the dataset size), #pipelines fixed.
// The paper's observation: past B = 0.1 x dataset size, extra storage
// buys little time but costs real money.
//
// Beyond the paper's three methods, a "HYPPO-disk" column runs the same
// HYPPO configuration against the durable tiered store (disk back,
// memory front): identical decisions and budget compliance, plus the
// measured cost of persisting every materialized artifact.
//
// `--json <path>` additionally writes the rows machine-readably (one
// section per use case); bench/BENCH_fig4.json in the repo is the
// committed smoke-scale output.

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

namespace {

// A per-run scratch store directory under the system temp dir; any
// leftovers from an aborted earlier run are cleared first.
std::string ScratchStoreDir(const std::string& use_case, double budget) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("hyppo_fig4_" + use_case + "_" +
                        std::to_string(static_cast<int>(budget * 100)));
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  const BenchArgs args = ParseBenchArgs(argc, argv);
  Banner("Iterative pipeline execution: varying storage budget", "Fig. 4");
  const Scale scale = BenchScale();
  const int num_pipelines =
      scale == Scale::kFull ? 50 : (scale == Scale::kSmoke ? 8 : 15);
  const double multiplier = scale == Scale::kFull ? 0.1 : 0.01;
  const std::vector<double> budgets =
      scale == Scale::kSmoke ? std::vector<double>{0.01, 0.1, 1.0}
                             : std::vector<double>{0.01, 0.05, 0.1, 0.5, 1.0};
  struct MethodSpec {
    const char* name;
    MethodFactory factory;
    bool durable;  // route materialized artifacts through the disk tier
  };
  const MethodSpec methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory(), false},
      {"Collab", MakeCollabFactory(), false},
      {"HYPPO", MakeHyppoFactory(), false},
      {"HYPPO-disk", MakeHyppoFactory(), true},
  };
  JsonWriter json("fig4_budget");
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    std::printf("\n--- %s (#pipelines=%d) ---\n", use_case.name.c_str(),
                num_pipelines);
    Table table({"B (xdataset)", "method", "cet (s)", "time speedup",
                 "price (EUR)", "price speedup", "stored"});
    for (double budget : budgets) {
      ScenarioConfig config;
      config.use_case = use_case;
      config.num_pipelines = num_pipelines;
      config.budget_factor = budget;
      config.dataset_multiplier = multiplier;
      config.seed = 42;
      config.simulate = true;
      double baseline_cet = 0.0;
      double baseline_price = 0.0;
      for (const auto& [name, factory, durable] : methods) {
        config.store_dir =
            durable ? ScratchStoreDir(use_case.name, budget) : "";
        auto result = RunIterativeScenario(factory, config);
        result.status().Abort(name);
        if (std::string(name) == "NoOptimization") {
          baseline_cet = result->cumulative_seconds;
          baseline_price = result->price_eur;
        }
        table.AddRow({FormatDouble(budget, 2), name,
                      FormatDouble(result->cumulative_seconds, 2),
                      Speedup(baseline_cet, result->cumulative_seconds),
                      FormatDouble(result->price_eur, 4),
                      Speedup(baseline_price, result->price_eur),
                      std::to_string(result->stored_artifacts)});
        json.AddRow(use_case.name)
            .Set("budget_factor", budget)
            .Set("method", name)
            .Set("cumulative_seconds", result->cumulative_seconds)
            .Set("time_speedup",
                 result->cumulative_seconds > 0.0
                     ? baseline_cet / result->cumulative_seconds
                     : 0.0)
            .Set("price_eur", result->price_eur)
            .Set("stored_artifacts",
                 static_cast<double>(result->stored_artifacts))
            .Set("budget_bytes", static_cast<double>(result->budget_bytes))
            .Set("tier", durable ? "tiered-disk" : "memory");
        if (durable) {
          std::error_code ec;
          std::filesystem::remove_all(config.store_dir, ec);
        }
      }
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): time speed-ups saturate around B=0.1x\n"
      "while the price term keeps growing with B — storing more artifacts\n"
      "comes at a cost. The HYPPO-disk rows add durability at the same\n"
      "budget compliance (stored counts match the in-memory HYPPO rows).\n");
  const std::string json_path =
      hyppo::bench::ResolveJsonPath(args, "BENCH_fig4.json");
  if (!json.WriteTo(json_path)) {
    return 1;
  }
  return 0;
}
