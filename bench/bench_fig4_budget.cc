// Regenerates Fig. 4: execution-time and price speed-ups with a varying
// storage budget B (as a fraction of the dataset size), #pipelines fixed.
// The paper's observation: past B = 0.1 x dataset size, extra storage
// buys little time but costs real money.

#include "bench_util.h"
#include "common/string_util.h"
#include "workload/scenario.h"

int main() {
  using namespace hyppo;
  using namespace hyppo::bench;
  using namespace hyppo::workload;

  Banner("Iterative pipeline execution: varying storage budget", "Fig. 4");
  const bool full = FullScale();
  const int num_pipelines = full ? 50 : 15;
  const double multiplier = full ? 0.1 : 0.01;
  const std::vector<double> budgets = {0.01, 0.05, 0.1, 0.5, 1.0};
  const std::pair<const char*, MethodFactory> methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    std::printf("\n--- %s (#pipelines=%d) ---\n", use_case.name.c_str(),
                num_pipelines);
    Table table({"B (xdataset)", "method", "cet (s)", "time speedup",
                 "price (EUR)", "price speedup", "stored"});
    for (double budget : budgets) {
      ScenarioConfig config;
      config.use_case = use_case;
      config.num_pipelines = num_pipelines;
      config.budget_factor = budget;
      config.dataset_multiplier = multiplier;
      config.seed = 42;
      config.simulate = true;
      double baseline_cet = 0.0;
      double baseline_price = 0.0;
      for (const auto& [name, factory] : methods) {
        auto result = RunIterativeScenario(factory, config);
        result.status().Abort(name);
        if (std::string(name) == "NoOptimization") {
          baseline_cet = result->cumulative_seconds;
          baseline_price = result->price_eur;
        }
        table.AddRow({FormatDouble(budget, 2), name,
                      FormatDouble(result->cumulative_seconds, 2),
                      Speedup(baseline_cet, result->cumulative_seconds),
                      FormatDouble(result->price_eur, 4),
                      Speedup(baseline_price, result->price_eur),
                      std::to_string(result->stored_artifacts)});
      }
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape (paper): time speed-ups saturate around B=0.1x\n"
      "while the price term keeps growing with B — storing more artifacts\n"
      "comes at a cost.\n");
  return 0;
}
