#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/graph.h"
#include "core/naming.h"
#include "core/parser.h"
#include "core/pipeline_builder.h"

namespace hyppo::core {
namespace {

TEST(PipelineGraphTest, SourceNodeExists) {
  PipelineGraph graph;
  EXPECT_EQ(graph.source(), 0);
  EXPECT_EQ(graph.num_artifacts(), 1);
  EXPECT_EQ(graph.artifact(0).kind, ArtifactKind::kSource);
  EXPECT_EQ(*graph.FindArtifact("__source__"), 0);
}

ArtifactInfo MakeArtifact(const std::string& name,
                          ArtifactKind kind = ArtifactKind::kData) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.rows = 100;
  info.cols = 4;
  info.size_bytes = 3200;
  return info;
}

TEST(PipelineGraphTest, AddArtifactRejectsDuplicates) {
  PipelineGraph graph;
  ASSERT_TRUE(graph.AddArtifact(MakeArtifact("a")).ok());
  EXPECT_TRUE(graph.AddArtifact(MakeArtifact("a")).status().IsAlreadyExists());
  EXPECT_TRUE(graph.AddArtifact(MakeArtifact("")).status().IsInvalidArgument());
}

TEST(PipelineGraphTest, GetOrAddIsIdempotent) {
  PipelineGraph graph;
  const NodeId first = graph.GetOrAddArtifact(MakeArtifact("x"));
  const NodeId second = graph.GetOrAddArtifact(MakeArtifact("x"));
  EXPECT_EQ(first, second);
  EXPECT_EQ(graph.num_artifacts(), 2);
}

TEST(PipelineGraphTest, TaskKeepsDeclarationOrder) {
  PipelineGraph graph;
  const NodeId a = *graph.AddArtifact(MakeArtifact("a"));
  const NodeId b = *graph.AddArtifact(MakeArtifact("b"));
  const NodeId c = *graph.AddArtifact(MakeArtifact("c"));
  TaskInfo task;
  task.logical_op = "Join";
  task.type = TaskType::kTransform;
  // Declaration order b, a — the structural hypergraph sorts, the ordered
  // view must not.
  const EdgeId e = *graph.AddTask(task, {b, a}, {c});
  EXPECT_EQ(graph.ordered_tail(e), (std::vector<NodeId>{b, a}));
  EXPECT_EQ(graph.hypergraph().edge(e).tail, (std::vector<NodeId>{a, b}));
}

TEST(PipelineGraphTest, LoadTaskAndSinks) {
  PipelineGraph graph;
  const NodeId a = *graph.AddArtifact(MakeArtifact("a", ArtifactKind::kRaw));
  const NodeId b = *graph.AddArtifact(MakeArtifact("b"));
  const EdgeId load = *graph.AddLoadTask(a);
  EXPECT_EQ(graph.task(load).type, TaskType::kLoad);
  TaskInfo task;
  task.logical_op = "Op";
  task.type = TaskType::kFit;
  *graph.AddTask(task, {a}, {b});
  // Only b is a sink (a feeds the task).
  EXPECT_EQ(graph.SinkArtifacts(), (std::vector<NodeId>{b}));
  EXPECT_TRUE(graph.AddLoadTask(graph.source()).status().IsInvalidArgument());
}

TEST(PipelineGraphTest, TaskSignatureDistinguishesImpls) {
  PipelineGraph graph;
  const NodeId a = *graph.AddArtifact(MakeArtifact("a"));
  const NodeId b = *graph.AddArtifact(MakeArtifact("b"));
  TaskInfo skl;
  skl.logical_op = "Scaler";
  skl.type = TaskType::kFit;
  skl.impl = "skl.Scaler";
  TaskInfo tfl = skl;
  tfl.impl = "tfl.Scaler";
  const EdgeId e1 = *graph.AddTask(skl, {a}, {b});
  const EdgeId e2 = *graph.AddTask(tfl, {a}, {b});
  EXPECT_NE(graph.TaskSignature(e1), graph.TaskSignature(e2));
}

// ---------------------------------------------------------------------------
// Canonical naming: the heart of equivalence discovery.

TEST(NamingTest, ImplDoesNotAffectNames) {
  TaskInfo skl;
  skl.logical_op = "StandardScaler";
  skl.type = TaskType::kFit;
  skl.impl = "skl.StandardScaler";
  TaskInfo tfl = skl;
  tfl.impl = "tfl.StandardScaler";
  const std::vector<std::string> inputs = {"abc"};
  EXPECT_EQ(TaskOutputNames(skl, inputs, 1), TaskOutputNames(tfl, inputs, 1));
}

TEST(NamingTest, ConfigAffectsNames) {
  TaskInfo a;
  a.logical_op = "Ridge";
  a.type = TaskType::kFit;
  a.config.SetDouble("alpha", 1.0);
  TaskInfo b = a;
  b.config.SetDouble("alpha", 75.0);
  EXPECT_NE(TaskOutputNames(a, {"x"}, 1), TaskOutputNames(b, {"x"}, 1));
}

TEST(NamingTest, InputOrderAndIdentityMatter) {
  TaskInfo task;
  task.logical_op = "Op";
  task.type = TaskType::kTransform;
  EXPECT_NE(TaskOutputNames(task, {"a", "b"}, 1),
            TaskOutputNames(task, {"b", "a"}, 1));
  EXPECT_NE(TaskOutputNames(task, {"a"}, 1), TaskOutputNames(task, {"c"}, 1));
}

TEST(NamingTest, OutputsAreDistinctAndStable) {
  TaskInfo task;
  task.logical_op = "Split";
  task.type = TaskType::kSplit;
  const auto names = TaskOutputNames(task, {"data"}, 2);
  EXPECT_EQ(names.size(), 2u);
  EXPECT_NE(names[0], names[1]);
  EXPECT_EQ(names, TaskOutputNames(task, {"data"}, 2));
  EXPECT_EQ(names[0].size(), 16u);
}

TEST(NamingTest, TaskTypeMatters) {
  TaskInfo fit;
  fit.logical_op = "PCA";
  fit.type = TaskType::kFit;
  TaskInfo transform = fit;
  transform.type = TaskType::kTransform;
  EXPECT_NE(TaskOutputNames(fit, {"x"}, 1),
            TaskOutputNames(transform, {"x"}, 1));
}

TEST(NamingTest, SourceNamesKeyedByDatasetId) {
  EXPECT_EQ(SourceArtifactName("higgs"), SourceArtifactName("higgs"));
  EXPECT_NE(SourceArtifactName("higgs"), SourceArtifactName("taxi"));
}

// ---------------------------------------------------------------------------
// Dictionary.

TEST(DictionaryTest, BuiltFromRegistryGroupsImpls) {
  Dictionary dictionary =
      Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  // The paper's catalog has 40 operators; our lop x tasktype entries
  // exceed that comfortably.
  EXPECT_GE(dictionary.num_entries(), 40u);
  const auto& scaler_fit = dictionary.ImplsFor("StandardScaler", TaskType::kFit);
  EXPECT_EQ(scaler_fit.size(), 2u);
  EXPECT_TRUE(dictionary.Knows("PCA", TaskType::kTransform));
  EXPECT_FALSE(dictionary.Knows("PCA", TaskType::kPredict));
  EXPECT_FALSE(dictionary.Knows("Bogus", TaskType::kFit));
  EXPECT_TRUE(dictionary.ImplsFor("Bogus", TaskType::kFit).empty());
}

TEST(DictionaryTest, RegisterRejectsDuplicates) {
  Dictionary dictionary;
  ASSERT_TRUE(dictionary.Register("Op", TaskType::kFit, "skl.Op").ok());
  EXPECT_TRUE(dictionary.Register("Op", TaskType::kFit, "skl.Op")
                  .IsAlreadyExists());
  ASSERT_TRUE(dictionary.Register("Op", TaskType::kFit, "tfl.Op").ok());
  EXPECT_EQ(dictionary.ImplsFor("Op", TaskType::kFit).size(), 2u);
}

// ---------------------------------------------------------------------------
// PipelineBuilder.

TEST(PipelineBuilderTest, BuildsFig1Pipeline) {
  PipelineBuilder builder("fig1");
  const NodeId data = *builder.LoadDataset("higgs", 800000, 30);
  auto split = *builder.Split(data);
  const NodeId scaler =
      *builder.Fit("StandardScaler", "skl.StandardScaler", split.first);
  const NodeId test_s = *builder.Transform(scaler, split.second);
  const NodeId model = *builder.Fit("RandomForestClassifier",
                                    "skl.RandomForestClassifier", split.first);
  const NodeId preds_train = *builder.Predict(model, split.first);
  const NodeId preds_test = *builder.Predict(model, test_s);
  (void)preds_train;
  (void)preds_test;
  Pipeline pipeline = *std::move(builder).Build();
  // Artifacts: s, data, train, test, scaler, test_s, model, 2x preds = 9.
  EXPECT_EQ(pipeline.graph.num_artifacts(), 9);
  // Tasks: load, split, 2 fits, transform, 2 predicts = 7.
  EXPECT_EQ(pipeline.graph.num_tasks(), 7);
  // Targets: preds_train, preds_test (sinks). test_s feeds predict.
  EXPECT_EQ(pipeline.targets.size(), 2u);
}

TEST(PipelineBuilderTest, ShapePropagation) {
  PipelineBuilder builder("shapes");
  const NodeId data = *builder.LoadDataset("d", 1000, 10);
  ml::Config split_config;
  split_config.SetDouble("test_size", 0.2);
  auto split = *builder.Split(data, split_config);
  const ArtifactInfo& train = builder.graph().artifact(split.first);
  const ArtifactInfo& test = builder.graph().artifact(split.second);
  EXPECT_EQ(train.rows, 800);
  EXPECT_EQ(test.rows, 200);
  EXPECT_EQ(train.kind, ArtifactKind::kTrain);
  EXPECT_EQ(test.kind, ArtifactKind::kTest);

  ml::Config pca_config;
  pca_config.SetInt("n_components", 3);
  const NodeId pca = *builder.Fit("PCA", "skl.PCA", split.first, pca_config);
  const NodeId reduced = *builder.Transform(pca, split.first);
  EXPECT_EQ(builder.graph().artifact(pca).kind, ArtifactKind::kOpState);
  EXPECT_EQ(builder.graph().artifact(reduced).cols, 3);
  EXPECT_EQ(builder.graph().artifact(reduced).kind, ArtifactKind::kTrain);
}

TEST(PipelineBuilderTest, EquivalentImplsShareArtifactNames) {
  PipelineBuilder b1("p1");
  const NodeId d1 = *b1.LoadDataset("d", 1000, 10);
  auto s1 = *b1.Split(d1);
  const NodeId st1 = *b1.Fit("StandardScaler", "skl.StandardScaler", s1.first);

  PipelineBuilder b2("p2");
  const NodeId d2 = *b2.LoadDataset("d", 1000, 10);
  auto s2 = *b2.Split(d2);
  const NodeId st2 = *b2.Fit("StandardScaler", "tfl.StandardScaler", s2.first);

  EXPECT_EQ(b1.graph().artifact(st1).name, b2.graph().artifact(st2).name);
}

TEST(PipelineBuilderTest, SameTaskTwiceDedups) {
  PipelineBuilder builder("dedup");
  const NodeId data = *builder.LoadDataset("d", 100, 5);
  auto once = *builder.Split(data);
  auto twice = *builder.Split(data);
  EXPECT_EQ(once.first, twice.first);
  EXPECT_EQ(once.second, twice.second);
}

TEST(PipelineBuilderTest, EmptyPipelineFails) {
  PipelineBuilder builder("empty");
  EXPECT_TRUE(std::move(builder).Build().status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Parser.

class ParserTest : public ::testing::Test {
 protected:
  Dictionary dictionary_ =
      Dictionary::FromRegistry(ml::OperatorRegistry::Global());
};

TEST_F(ParserTest, ParsesFig1Code) {
  const char* code = R"(
# comment line
data        = load("higgs", rows=800000, cols=30)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
scaler      = sk.StandardScaler.fit(train)
test_s      = scaler.transform(test)
model       = sk.RandomForestClassifier.fit(train, n_estimators=20)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";
  auto pipeline = ParsePipeline(code, "fig1", dictionary_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  EXPECT_EQ(pipeline->graph.num_tasks(), 7);  // incl. the load task
  EXPECT_EQ(pipeline->targets.size(), 1u);    // score
  const ArtifactInfo& target =
      pipeline->graph.artifact(pipeline->targets[0]);
  EXPECT_EQ(target.kind, ArtifactKind::kValue);
}

TEST_F(ParserTest, ParserAndBuilderAgreeOnNames) {
  const char* code = R"(
data        = load("d", rows=1000, cols=10)
train, test = sk.TrainTestSplit.split(data)
scaler      = tf.StandardScaler.fit(train)
)";
  auto parsed = ParsePipeline(code, "p", dictionary_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  PipelineBuilder builder("b");
  const NodeId data = *builder.LoadDataset("d", 1000, 10);
  auto split = *builder.Split(data);
  const NodeId scaler =
      *builder.Fit("StandardScaler", "skl.StandardScaler", split.first);
  // Parsed used the tfl impl; names must match regardless.
  const std::string expected = builder.graph().artifact(scaler).name;
  EXPECT_TRUE(parsed->graph.HasArtifact(expected));
}

TEST_F(ParserTest, FrameworkAliases) {
  const char* code = R"(
data = load("d", rows=100, cols=5)
t, e = sklearn.TrainTestSplit.split(data)
s = tensorflow.StandardScaler.fit(t)
)";
  auto pipeline = ParsePipeline(code, "p", dictionary_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  bool found_tfl = false;
  for (EdgeId e : pipeline->graph.hypergraph().LiveEdges()) {
    if (pipeline->graph.task(e).impl == "tfl.StandardScaler") {
      found_tfl = true;
    }
  }
  EXPECT_TRUE(found_tfl);
}

TEST_F(ParserTest, ReportsLineNumbersOnErrors) {
  auto missing_var = ParsePipeline("x = foo.transform(ghost)\n", "p",
                                   dictionary_);
  EXPECT_TRUE(missing_var.status().IsParseError());
  EXPECT_NE(missing_var.status().message().find("line 1"),
            std::string::npos);

  auto bad_framework = ParsePipeline(
      "d = load(\"x\", rows=10, cols=2)\nz = pytorch.PCA.fit(d)\n", "p",
      dictionary_);
  EXPECT_TRUE(bad_framework.status().IsParseError());
}

TEST_F(ParserTest, RejectsMalformedLines) {
  EXPECT_TRUE(
      ParsePipeline("just words\n", "p", dictionary_).status().IsParseError());
  EXPECT_TRUE(ParsePipeline("x = not_a_call\n", "p", dictionary_)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParsePipeline("a, b = load(\"d\", rows=10, cols=2)\n", "p",
                            dictionary_)
                  .status()
                  .IsParseError());
}

TEST_F(ParserTest, SplitArityChecked) {
  const char* code = R"(
data = load("d", rows=100, cols=5)
only_one = sk.TrainTestSplit.split(data)
)";
  EXPECT_TRUE(ParsePipeline(code, "p", dictionary_).status().IsParseError());
}

TEST_F(ParserTest, UnknownOperatorAccepted) {
  // Unknown operators become single-implementation operators (§IV-C).
  const char* code = R"(
data = load("d", rows=100, cols=5)
w = sk.MyCustomWidget.fit(data, knob=3)
)";
  auto pipeline = ParsePipeline(code, "p", dictionary_);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  EXPECT_EQ(pipeline->graph.num_tasks(), 2);
}

}  // namespace
}  // namespace hyppo::core
