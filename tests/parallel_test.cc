#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "workload/datagen.h"

namespace hyppo {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter]() { counter.fetch_add(1); });
  pool.Submit([&counter]() { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(3);
  pool.Wait();  // no deadlock
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, SingleThreadDegenerate) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter]() { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

// ---------------------------------------------------------------------------
// Parallel plan execution: identical results to serial execution, fewer
// wall-clock waves than tasks.

class ParallelExecutorTest : public ::testing::Test {
 protected:
  // A pipeline with independent branches: two models fitted on the same
  // scaled train data, each predicting and evaluating independently.
  core::Pipeline BuildBranchyPipeline() {
    core::PipelineBuilder builder("branchy");
    NodeId data = *builder.LoadDataset("par-unit", 800, 6);
    auto split = *builder.Split(data);
    ml::Config impute;
    impute.Set("strategy", "mean");
    NodeId imputer = *builder.Fit("SimpleImputer", "skl.SimpleImputer",
                                  split.first, impute);
    NodeId train_i = *builder.Transform(imputer, split.first);
    NodeId test_i = *builder.Transform(imputer, split.second);
    NodeId scaler =
        *builder.Fit("StandardScaler", "skl.StandardScaler", train_i);
    NodeId train_s = *builder.Transform(scaler, train_i);
    NodeId test_s = *builder.Transform(scaler, test_i);
    ml::Config tree;
    tree.SetInt("max_depth", 5);
    NodeId model_a = *builder.Fit("DecisionTreeClassifier",
                                  "skl.DecisionTreeClassifier", train_s, tree);
    ml::Config logistic;
    logistic.SetDouble("alpha", 0.001);
    NodeId model_b = *builder.Fit("LogisticRegression",
                                  "skl.LogisticRegression", train_s, logistic);
    NodeId preds_a = *builder.Predict(model_a, test_s);
    NodeId preds_b = *builder.Predict(model_b, test_s);
    *builder.Evaluate(preds_a, test_s, "accuracy");
    *builder.Evaluate(preds_b, test_s, "f1");
    return *std::move(builder).Build();
  }

  core::Augmentation AsAugmentation(const core::Pipeline& pipeline) {
    core::Augmentation aug;
    aug.graph = pipeline.graph;
    aug.targets = pipeline.targets;
    const size_t slots =
        static_cast<size_t>(aug.graph.hypergraph().num_edge_slots());
    aug.edge_weight.assign(slots, 1.0);
    aug.edge_seconds.assign(slots, 1.0);
    return aug;
  }

  core::DatasetResolver Resolver() {
    return [](const std::string&) -> Result<ml::DatasetPtr> {
      return workload::GenerateHiggs(800, 6, 17);
    };
  }
};

TEST_F(ParallelExecutorTest, MatchesSerialResults) {
  core::Pipeline pipeline = BuildBranchyPipeline();
  core::Augmentation aug = AsAugmentation(pipeline);
  core::Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();

  storage::InMemoryArtifactStore store;
  core::Monitor monitor;
  core::Executor executor(&store, Resolver(), &monitor);

  core::Executor::Options serial;
  auto serial_result = executor.Execute(aug, plan, serial);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status();

  core::Executor::Options parallel;
  parallel.parallelism = 4;
  auto parallel_result = executor.Execute(aug, plan, parallel);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status();

  // Same artifacts produced with identical values.
  ASSERT_EQ(parallel_result->payloads.size(),
            serial_result->payloads.size());
  for (const auto& [node, payload] : serial_result->payloads) {
    auto it = parallel_result->payloads.find(node);
    ASSERT_NE(it, parallel_result->payloads.end());
    if (const double* value = std::get_if<double>(&payload)) {
      EXPECT_DOUBLE_EQ(*value, std::get<double>(it->second));
    }
    if (const auto* preds = std::get_if<ml::PredictionsPtr>(&payload)) {
      EXPECT_EQ(**preds, **std::get_if<ml::PredictionsPtr>(&it->second));
    }
  }
  EXPECT_EQ(parallel_result->task_runs.size(),
            serial_result->task_runs.size());
  // The parallel schedule's critical path is no longer than the total.
  EXPECT_LE(parallel_result->critical_path_seconds,
            parallel_result->total_seconds + 1e-12);
}

TEST_F(ParallelExecutorTest, FailureInOneBranchSurfaces) {
  core::Pipeline pipeline = BuildBranchyPipeline();
  core::Augmentation aug = AsAugmentation(pipeline);
  // Corrupt one model's impl so its branch fails.
  for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
    if (aug.graph.task(e).logical_op == "LogisticRegression") {
      aug.graph.task(e).impl = "nope.LogisticRegression";
    }
  }
  core::Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();
  storage::InMemoryArtifactStore store;
  core::Monitor monitor;
  core::Executor executor(&store, Resolver(), &monitor);
  core::Executor::Options parallel;
  parallel.parallelism = 4;
  auto result = executor.Execute(aug, plan, parallel);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_TRUE(result->failures[0].status.IsNotFound())
      << result->failures[0].status;
  EXPECT_FALSE(result->complete());
  // The healthy branch still produced its payloads.
  EXPECT_FALSE(result->payloads.empty());
}

TEST_F(ParallelExecutorTest, RuntimeLevelParallelismEndToEnd) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 1 << 20;
  options.parallelism = 4;
  core::Runtime runtime(options);
  runtime.RegisterDatasetGenerator(
      "par-unit", []() { return workload::GenerateHiggs(800, 6, 17); });
  core::HyppoMethod method(&runtime);
  core::Pipeline pipeline = BuildBranchyPipeline();
  auto planned = method.PlanPipeline(pipeline);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto record =
      runtime.ExecuteAndRecord(pipeline, planned->aug, planned->plan);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_GT(record->seconds, 0.0);
  // Both evaluation targets were produced.
  int values = 0;
  for (const auto& [name, payload] : record->payloads_by_name) {
    values += std::get_if<double>(&payload) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(values, 2);
}

}  // namespace
}  // namespace hyppo
