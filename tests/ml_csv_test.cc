#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "ml/csv.h"
#include "workload/datagen.h"

namespace hyppo::ml {
namespace {

TEST(CsvTest, ParsesHeaderAndTarget) {
  CsvOptions options;
  options.target_column = "label";
  auto data = ParseCsv("a,b,label\n1,2,0\n3.5,-4,1\n", options);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->rows(), 2);
  EXPECT_EQ(data->cols(), 2);
  EXPECT_EQ(data->column_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(data->at(1, 0), 3.5);
  EXPECT_DOUBLE_EQ(data->at(1, 1), -4.0);
  ASSERT_TRUE(data->has_target());
  EXPECT_DOUBLE_EQ(data->target()[0], 0.0);
  EXPECT_DOUBLE_EQ(data->target()[1], 1.0);
}

TEST(CsvTest, HeaderlessGeneratesNames) {
  CsvOptions options;
  options.has_header = false;
  auto data = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->column_names(), (std::vector<std::string>{"f0", "f1"}));
  EXPECT_FALSE(data->has_target());
}

TEST(CsvTest, MissingMarkersBecomeNaN) {
  CsvOptions options;
  options.missing_markers = {"-999.0"};
  auto data = ParseCsv("a,b\n-999.0,1\n,2\n", options);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_TRUE(std::isnan(data->at(0, 0)));
  EXPECT_TRUE(std::isnan(data->at(1, 0)));  // empty cell
  EXPECT_DOUBLE_EQ(data->at(1, 1), 2.0);
}

TEST(CsvTest, RejectsMalformedInput) {
  CsvOptions options;
  EXPECT_TRUE(ParseCsv("", options).status().IsParseError());
  EXPECT_TRUE(ParseCsv("a,b\n1\n", options).status().IsParseError());
  EXPECT_TRUE(ParseCsv("a,b\n1,notanumber\n", options)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseCsv("a,b\n", options).status().IsParseError());
  options.target_column = "ghost";
  EXPECT_TRUE(
      ParseCsv("a,b\n1,2\n", options).status().IsInvalidArgument());
}

TEST(CsvTest, SemicolonDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto data = ParseCsv("x;y\n1;2\n", options);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->at(0, 1), 2.0);
}

TEST(CsvTest, RoundTripThroughText) {
  auto original = *workload::GenerateTaxi(40, 5);
  const std::string text = ToCsv(*original);
  CsvOptions options;
  options.target_column = "target";
  auto restored = ParseCsv(text, options);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->rows(), original->rows());
  ASSERT_EQ(restored->cols(), original->cols());
  for (int64_t r = 0; r < original->rows(); ++r) {
    for (int64_t c = 0; c < original->cols(); ++c) {
      EXPECT_NEAR(restored->at(r, c), original->at(r, c), 1e-9);
    }
    EXPECT_NEAR(restored->target()[static_cast<size_t>(r)],
                original->target()[static_cast<size_t>(r)], 1e-6);
  }
}

TEST(CsvTest, RoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hyppo_csv_test.csv")
          .string();
  auto original = *workload::GenerateHiggs(30, 4, 3);
  ASSERT_TRUE(SaveCsv(*original, path).ok());
  CsvOptions options;
  options.target_column = "target";
  auto restored = LoadCsv(path, options);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->rows(), 30);
  // NaNs survive as empty cells.
  int nans_original = 0;
  int nans_restored = 0;
  for (int64_t r = 0; r < 30; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      nans_original += std::isnan(original->at(r, c)) ? 1 : 0;
      nans_restored += std::isnan(restored->at(r, c)) ? 1 : 0;
    }
  }
  EXPECT_EQ(nans_original, nans_restored);
  std::filesystem::remove(path);
  EXPECT_TRUE(LoadCsv(path, options).status().IsIoError());
}

}  // namespace
}  // namespace hyppo::ml
