#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "workload/datagen.h"

namespace hyppo::core {
namespace {

// Minimal pipeline: load -> split -> scaler fit.
Result<Pipeline> TinyPipeline() {
  PipelineBuilder builder("tiny");
  HYPPO_ASSIGN_OR_RETURN(NodeId data, builder.LoadDataset("tiny", 200, 4));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_RETURN_NOT_OK(
      builder.Fit("StandardScaler", "skl.StandardScaler", split.first)
          .status());
  return std::move(builder).Build();
}

// Wraps the pipeline as a trivial augmentation with unit weights.
Augmentation AsAugmentation(const Pipeline& pipeline) {
  Augmentation aug;
  aug.graph = pipeline.graph;
  aug.targets = pipeline.targets;
  const size_t slots =
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots());
  aug.edge_weight.assign(slots, 1.0);
  aug.edge_seconds.assign(slots, 1.0);
  return aug;
}

Plan FullPlan(const Augmentation& aug) {
  Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();
  for (EdgeId e : plan.edges) {
    plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  return plan;
}

TEST(ExecutorTest, MissingDatasetResolverRecordedAsFailure) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(&store, /*resolver=*/nullptr, &monitor);
  Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  Executor::Options options;
  auto result = executor.Execute(aug, FullPlan(aug), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->complete());
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_TRUE(result->failures[0].status.IsFailedPrecondition())
      << result->failures[0].status;
  // Everything downstream of the dead load is starved, not attempted.
  EXPECT_EQ(result->skipped_edges.size(), 2u);
  EXPECT_TRUE(result->payloads.empty());
}

TEST(ExecutorTest, UnknownDatasetSurfacesResolverError) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(
      &store,
      [](const std::string& id) -> Result<ml::DatasetPtr> {
        return Status::NotFound("no dataset '" + id + "'");
      },
      &monitor);
  Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  auto result = executor.Execute(aug, FullPlan(aug), Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_TRUE(result->failures[0].status.IsNotFound());
}

TEST(ExecutorTest, MissingMaterializedPayloadRecordedAsFailure) {
  // A plan that loads a non-raw artifact not present in the store.
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(&store, nullptr, &monitor);
  Augmentation aug;
  ArtifactInfo info;
  info.name = "derived";
  info.display = "derived";
  info.kind = ArtifactKind::kData;
  info.size_bytes = 64;
  NodeId node = aug.graph.AddArtifact(info).ValueOrDie();
  aug.graph.AddLoadTask(node).ValueOrDie();
  aug.targets = {node};
  aug.edge_weight.assign(1, 1.0);
  aug.edge_seconds.assign(1, 1.0);
  Plan plan = FullPlan(aug);
  auto result = executor.Execute(aug, plan, Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_TRUE(result->failures[0].status.IsNotFound());
  // In simulation mode the same plan succeeds with a placeholder payload.
  Executor::Options simulate;
  simulate.simulate = true;
  auto simulated = executor.Execute(aug, plan, simulate);
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  EXPECT_TRUE(simulated->complete());
  EXPECT_GT(simulated->total_seconds, 0.0);
}

TEST(ExecutorTest, UnknownImplRecordedAsFailure) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(
      &store,
      [](const std::string&) -> Result<ml::DatasetPtr> {
        return workload::GenerateHiggs(200, 4, 1);
      },
      &monitor);
  PipelineBuilder builder("bad-impl");
  NodeId data = *builder.LoadDataset("tiny", 200, 4);
  auto split = *builder.Split(data);
  *builder.Fit("StandardScaler", "nope.StandardScaler", split.first);
  Pipeline pipeline = *std::move(builder).Build();
  Augmentation aug = AsAugmentation(pipeline);
  auto result = executor.Execute(aug, FullPlan(aug), Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->failures.size(), 1u);
  EXPECT_TRUE(result->failures[0].status.IsNotFound())
      << result->failures[0].status;
  // The load and split upstream of the bad fit still ran.
  EXPECT_EQ(result->task_runs.size(), 2u);
}

TEST(ExecutorTest, NonExecutablePlanRejectedUpFront) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(&store, nullptr, &monitor);
  Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  // Drop the load task: the split can never obtain its input.
  Plan plan;
  for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
    if (aug.graph.task(e).type != TaskType::kLoad) {
      plan.edges.push_back(e);
    }
  }
  auto result = executor.Execute(aug, plan, Executor::Options());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(ExecutorTest, LoadChargesStorageModelTime) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(&store, nullptr, &monitor);
  Augmentation aug;
  ArtifactInfo info;
  info.name = "blob";
  info.display = "blob";
  info.kind = ArtifactKind::kData;
  info.size_bytes = 1 << 20;
  NodeId node = aug.graph.AddArtifact(info).ValueOrDie();
  aug.graph.AddLoadTask(node).ValueOrDie();
  aug.targets = {node};
  aug.edge_weight.assign(1, 0.0);
  aug.edge_seconds.assign(1, 0.0);
  // Store a real payload of ~1 MiB.
  auto dataset = std::make_shared<ml::Dataset>(1 << 14, 8);
  ASSERT_TRUE(store.Put("blob", ArtifactPayload(ml::DatasetPtr(dataset)),
                        dataset->SizeBytes())
                  .ok());
  auto result = executor.Execute(aug, FullPlan(aug), Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->total_seconds,
              store.LoadSeconds(dataset->SizeBytes()), 1e-9);
  EXPECT_NE(std::get_if<ml::DatasetPtr>(&result->payloads.at(node)),
            nullptr);
}

TEST(ExecutorTest, MonitorReceivesTaskRecords) {
  storage::InMemoryArtifactStore store;
  CostEstimator estimator;
  Monitor monitor(&estimator);
  Executor executor(
      &store,
      [](const std::string&) -> Result<ml::DatasetPtr> {
        return workload::GenerateHiggs(200, 4, 1);
      },
      &monitor);
  Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  auto result = executor.Execute(aug, FullPlan(aug), Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(monitor.num_task_records(), 3);  // load, split, fit
  EXPECT_EQ(estimator.num_observations(), 2);  // split + fit (not load)
}

TEST(ExecutorTest, PartialPlanExecutesOnlyItsTasks) {
  storage::InMemoryArtifactStore store;
  Monitor monitor;
  Executor executor(
      &store,
      [](const std::string&) -> Result<ml::DatasetPtr> {
        return workload::GenerateHiggs(200, 4, 1);
      },
      &monitor);
  Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  // Plan that stops after the split.
  Plan plan;
  for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
    if (aug.graph.task(e).type != TaskType::kFit) {
      plan.edges.push_back(e);
    }
  }
  auto result = executor.Execute(aug, plan, Executor::Options());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->task_runs.size(), 2u);
  // The op-state node has no payload.
  int states = 0;
  for (const auto& [node, payload] : result->payloads) {
    states += std::get_if<ml::OpStatePtr>(&payload) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(states, 0);
}

}  // namespace
}  // namespace hyppo::core
