// Tests for the parallel plan-search engine and the bound/dominance
// soundness fixes that came with it (see docs/OPTIMIZER.md):
//  - every exact strategy returns the identical optimal cost at 1, 2, and
//    8 threads (randomized property sweep against the brute-force oracle);
//  - the admissible A* bound regression: the previous heuristic
//    double-counted already-paid sub-derivations and pruned the optimum;
//  - budget exhaustion, verify_plans wiring, and shared lower bounds.

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "hypergraph/algorithms.h"
#include "workload/synthetic_hypergraph.h"

namespace hyppo::core {
namespace {

using Strategy = PlanGenerator::Strategy;

ArtifactInfo MakeArtifact(const std::string& name) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = ArtifactKind::kData;
  info.rows = 10;
  info.cols = 2;
  info.size_bytes = 160;
  return info;
}

EdgeId AddTask(Augmentation& aug, const std::string& label,
               std::vector<NodeId> tails, std::vector<NodeId> heads,
               double weight) {
  TaskInfo task;
  task.logical_op = label;
  task.type = TaskType::kTransform;
  task.impl = "synthetic." + label;
  EdgeId e = aug.graph.AddTask(task, std::move(tails), std::move(heads))
                 .ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

EdgeId AddLoad(Augmentation& aug, NodeId node, double weight) {
  EdgeId e = aug.graph.AddLoadTask(node).ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

PlanGenerator::Options MakeOptions(Strategy strategy, int num_threads = 1,
                                   bool dominance = false) {
  PlanGenerator::Options options;
  options.strategy = strategy;
  options.num_threads = num_threads;
  options.dominance_pruning = dominance;
  return options;
}

// Regression for the inadmissible A* heuristic the admissible bound
// replaced. Optimum (cost 9): load M (5), then derive P, Q, T1, T2 for 1
// each. Alternative: load T1 + load T2 for 10. After committing to the
// derivation of both targets, the search reaches cost 8 with frontier {P};
// P's cheapest derivation routes through the already-paid M, so the old
// "max over frontier of dist(v)" bound (dist(P) = 6) overestimated the
// remaining cost (really 1) and pruned the optimal plan, returning 10.
TEST(ParallelOptimizerTest, AStarAdmissibilityRegression) {
  Augmentation aug;
  NodeId t1 = aug.graph.AddArtifact(MakeArtifact("T1")).ValueOrDie();
  NodeId t2 = aug.graph.AddArtifact(MakeArtifact("T2")).ValueOrDie();
  NodeId m = aug.graph.AddArtifact(MakeArtifact("M")).ValueOrDie();
  NodeId p = aug.graph.AddArtifact(MakeArtifact("P")).ValueOrDie();
  NodeId q = aug.graph.AddArtifact(MakeArtifact("Q")).ValueOrDie();
  AddLoad(aug, m, 5.0);
  AddLoad(aug, t1, 4.0);
  AddLoad(aug, t2, 6.0);
  AddTask(aug, "a", {m}, {t1}, 1.0);
  AddTask(aug, "p", {m}, {p}, 1.0);
  AddTask(aug, "q", {p}, {q}, 1.0);
  AddTask(aug, "b", {q}, {t2}, 1.0);
  aug.targets = {t1, t2};

  PlanGenerator generator;
  for (Strategy strategy :
       {Strategy::kStack, Strategy::kPriority, Strategy::kAStar,
        Strategy::kParallel}) {
    for (int threads : {1, 2, 8}) {
      auto plan = generator.Optimize(aug, MakeOptions(strategy, threads));
      ASSERT_TRUE(plan.ok())
          << PlanGenerator::StrategyToString(strategy) << ": "
          << plan.status();
      EXPECT_NEAR(plan->cost, 9.0, 1e-12)
          << PlanGenerator::StrategyToString(strategy)
          << " threads=" << threads;
    }
  }
}

TEST(ParallelOptimizerTest, PriorityAndAStarRouteToParallelEngine) {
  workload::SyntheticConfig config;
  config.num_artifacts = 10;
  config.alternatives = 2;
  config.seed = 7;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  PlanGenerator generator;
  auto serial = generator.Optimize(synthetic->aug,
                                   MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (Strategy strategy : {Strategy::kPriority, Strategy::kAStar}) {
    PlanGenerator::SearchStats stats;
    auto plan = generator.Optimize(synthetic->aug,
                                   MakeOptions(strategy, 8), &stats);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(stats.threads_used, 8);
    EXPECT_NEAR(plan->cost, serial->cost, 1e-9);
  }
  // kStack stays serial regardless of the thread knob.
  PlanGenerator::SearchStats stats;
  auto stack = generator.Optimize(synthetic->aug,
                                  MakeOptions(Strategy::kStack, 8), &stats);
  ASSERT_TRUE(stack.ok()) << stack.status();
  EXPECT_EQ(stats.threads_used, 1);
}

TEST(ParallelOptimizerTest, BudgetExhaustionReported) {
  workload::SyntheticConfig config;
  config.num_artifacts = 12;
  config.alternatives = 3;
  config.seed = 11;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  PlanGenerator generator;
  PlanGenerator::Options options = MakeOptions(Strategy::kParallel, 4);
  options.max_expansions = 2;
  auto plan = generator.Optimize(synthetic->aug, options);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsResourceExhausted()) << plan.status();
}

TEST(ParallelOptimizerTest, FailsWhenNoDerivationExists) {
  Augmentation aug;
  NodeId a = aug.graph.AddArtifact(MakeArtifact("a")).ValueOrDie();
  NodeId orphan = aug.graph.AddArtifact(MakeArtifact("orphan")).ValueOrDie();
  AddLoad(aug, a, 1.0);
  AddTask(aug, "t", {orphan}, {a}, 0.5);
  aug.targets = {orphan};
  PlanGenerator generator;
  auto plan = generator.Optimize(aug, MakeOptions(Strategy::kParallel, 4));
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsFailedPrecondition()) << plan.status();
}

TEST(ParallelOptimizerTest, VerifyPlansAppliesToParallelPlans) {
  workload::SyntheticConfig config;
  config.num_artifacts = 10;
  config.alternatives = 2;
  config.seed = 29;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  PlanGenerator generator;
  PlanGenerator::Options options = MakeOptions(Strategy::kParallel, 4);
  options.verify_plans = true;
  auto plan = generator.Optimize(synthetic->aug, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(IsValidPlan(synthetic->aug.graph.hypergraph(), plan->edges,
                          {synthetic->aug.graph.source()},
                          synthetic->aug.targets));
}

TEST(ParallelOptimizerTest, PerTargetSharesLowerBoundsAcrossTargets) {
  workload::SyntheticConfig config;
  config.num_artifacts = 11;
  config.alternatives = 2;
  config.seed = 31;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  PlanGenerator generator;
  for (Strategy strategy : {Strategy::kAStar, Strategy::kParallel}) {
    auto joint = generator.OptimizePerTarget(
        synthetic->aug, MakeOptions(strategy, strategy == Strategy::kParallel
                                                  ? 4
                                                  : 1));
    auto baseline = generator.OptimizePerTarget(
        synthetic->aug, MakeOptions(Strategy::kPriority));
    ASSERT_TRUE(joint.ok()) << joint.status();
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    EXPECT_NEAR(joint->cost, baseline->cost, 1e-9)
        << PlanGenerator::StrategyToString(strategy);
  }
}

TEST(ParallelOptimizerTest, ReusedBoundsMatchFreshBounds) {
  workload::SyntheticConfig config;
  config.num_artifacts = 10;
  config.alternatives = 3;
  config.seed = 37;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  const Augmentation& aug = synthetic->aug;
  PlanGenerator generator;
  const PlanGenerator::LowerBounds bounds =
      PlanGenerator::ComputeLowerBounds(aug);
  ASSERT_FALSE(bounds.empty());
  auto fresh = generator.OptimizeForTargets(aug, aug.targets,
                                            MakeOptions(Strategy::kAStar));
  auto reused = generator.OptimizeForTargets(
      aug, aug.targets, MakeOptions(Strategy::kAStar), nullptr, &bounds);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_TRUE(reused.ok()) << reused.status();
  EXPECT_NEAR(fresh->cost, reused->cost, 1e-12);
}

// Randomized cross-strategy property: every exact strategy returns the
// brute-force optimum at 1, 2, and 8 threads; greedy is feasible and
// never better than optimal.
class ParallelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelPropertyTest, AllEnginesAgreeAtEveryThreadCount) {
  workload::SyntheticConfig config;
  config.num_artifacts = 9 + static_cast<int32_t>(GetParam() % 4);
  config.alternatives = 2 + static_cast<int32_t>(GetParam() % 2);
  config.seed = GetParam() * 7919 + 101;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  const Augmentation& aug = synthetic->aug;
  PlanGenerator generator;
  auto brute = generator.BruteForce(aug);
  ASSERT_TRUE(brute.ok()) << brute.status();
  for (Strategy strategy : {Strategy::kStack, Strategy::kPriority,
                            Strategy::kAStar, Strategy::kParallel}) {
    for (int threads : {1, 2, 8}) {
      if (strategy == Strategy::kStack && threads > 1) {
        continue;  // kStack has no parallel routing
      }
      auto plan = generator.Optimize(aug, MakeOptions(strategy, threads));
      ASSERT_TRUE(plan.ok())
          << PlanGenerator::StrategyToString(strategy) << " threads="
          << threads << ": " << plan.status();
      EXPECT_NEAR(plan->cost, brute->cost, 1e-9)
          << PlanGenerator::StrategyToString(strategy)
          << " threads=" << threads;
      EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), plan->edges,
                              {aug.graph.source()}, aug.targets));
    }
  }
  auto greedy = generator.Optimize(aug, MakeOptions(Strategy::kGreedy));
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->cost, brute->cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

// The antichain dominance structure (common/antichain.h) must be
// cost-transparent: with pruning on, every exact engine still returns the
// brute-force optimum at 1, 2, and 8 threads. This is the differential
// guarantee for the frontier-keyed superset-visited dominance order — an
// unsound prune would surface here as a cost regression.
TEST_P(ParallelPropertyTest, DominanceAntichainPreservesOptimum) {
  workload::SyntheticConfig config;
  config.num_artifacts = 9 + static_cast<int32_t>(GetParam() % 4);
  config.alternatives = 2 + static_cast<int32_t>(GetParam() % 2);
  config.seed = GetParam() * 6271 + 17;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  const Augmentation& aug = synthetic->aug;
  PlanGenerator generator;
  auto brute = generator.BruteForce(aug);
  ASSERT_TRUE(brute.ok()) << brute.status();
  for (Strategy strategy : {Strategy::kStack, Strategy::kPriority,
                            Strategy::kAStar, Strategy::kParallel}) {
    for (int threads : {1, 2, 8}) {
      if (strategy == Strategy::kStack && threads > 1) {
        continue;
      }
      PlanGenerator::SearchStats stats;
      auto plan = generator.Optimize(
          aug, MakeOptions(strategy, threads, /*dominance=*/true), &stats);
      ASSERT_TRUE(plan.ok())
          << PlanGenerator::StrategyToString(strategy) << " threads="
          << threads << ": " << plan.status();
      EXPECT_NEAR(plan->cost, brute->cost, 1e-9)
          << PlanGenerator::StrategyToString(strategy)
          << " threads=" << threads;
      EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), plan->edges,
                              {aug.graph.source()}, aug.targets));
      EXPECT_GE(stats.pruned_by_dominance, 0);
    }
  }
}

// On alternative-rich instances the antichain must actually prune: a
// dominance structure that never fires is dead weight, and one that fires
// without changing the optimum is exactly what we want.
TEST(ParallelOptimizerTest, DominancePrunesOnAlternativeRichInstances) {
  workload::SyntheticConfig config;
  config.num_artifacts = 12;
  config.alternatives = 3;
  config.seed = 97;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  PlanGenerator generator;
  PlanGenerator::SearchStats pruned_stats;
  auto pruned = generator.Optimize(
      synthetic->aug, MakeOptions(Strategy::kPriority, 1, /*dominance=*/true),
      &pruned_stats);
  PlanGenerator::SearchStats plain_stats;
  auto plain = generator.Optimize(
      synthetic->aug, MakeOptions(Strategy::kPriority, 1, /*dominance=*/false),
      &plain_stats);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_NEAR(pruned->cost, plain->cost, 1e-9);
  EXPECT_GT(pruned_stats.pruned_by_dominance, 0);
  // Pruning may only shrink the explored state space.
  EXPECT_LE(pruned_stats.expansions, plain_stats.expansions);
}

}  // namespace
}  // namespace hyppo::core
