#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "hypergraph/algorithms.h"
#include "hypergraph/hypergraph.h"

namespace hyppo {
namespace {

// Builds the paper's Fig. 1(b-left) pipeline hypergraph:
//   s -l0-> v0 -t1-> {v1 train, v2 test}
//   v1 -t2-> {v3 scaled-train, v4 scaler-state}
//   {v4, v2} -t3-> v5
//   v1 -t4-> v6
//   {v6, v1} -t5-> v7 ; {v6, v5} -t6-> v8
struct Fig1Graph {
  Hypergraph g;
  NodeId s, v0, v1, v2, v3, v4, v5, v6, v7, v8;
  EdgeId l0, t1, t2, t3, t4, t5, t6;
};

Fig1Graph BuildFig1() {
  Fig1Graph f;
  f.s = f.g.AddNode();
  f.v0 = f.g.AddNode();
  f.v1 = f.g.AddNode();
  f.v2 = f.g.AddNode();
  f.v3 = f.g.AddNode();
  f.v4 = f.g.AddNode();
  f.v5 = f.g.AddNode();
  f.v6 = f.g.AddNode();
  f.v7 = f.g.AddNode();
  f.v8 = f.g.AddNode();
  f.l0 = *f.g.AddEdge({f.s}, {f.v0});
  f.t1 = *f.g.AddEdge({f.v0}, {f.v1, f.v2});
  f.t2 = *f.g.AddEdge({f.v1}, {f.v3, f.v4});
  f.t3 = *f.g.AddEdge({f.v4, f.v2}, {f.v5});
  f.t4 = *f.g.AddEdge({f.v1}, {f.v6});
  f.t5 = *f.g.AddEdge({f.v6, f.v1}, {f.v7});
  f.t6 = *f.g.AddEdge({f.v6, f.v5}, {f.v8});
  return f;
}

TEST(HypergraphTest, BasicStructure) {
  Fig1Graph f = BuildFig1();
  EXPECT_EQ(f.g.num_nodes(), 10);
  EXPECT_EQ(f.g.num_edges(), 7);
  // t1 is a multi-output hyperedge.
  EXPECT_EQ(f.g.edge(f.t1).head.size(), 2u);
  // bstar/fstar bookkeeping.
  EXPECT_EQ(f.g.bstar(f.v1).size(), 1u);
  EXPECT_EQ(f.g.bstar(f.v1)[0], f.t1);
  // v1 feeds t2, t4, t5.
  EXPECT_EQ(f.g.fstar(f.v1).size(), 3u);
}

TEST(HypergraphTest, RejectsEmptyHead) {
  Hypergraph g;
  g.AddNode();
  EXPECT_TRUE(g.AddEdge({0}, {}).status().IsInvalidArgument());
}

TEST(HypergraphTest, RejectsUnknownNodes) {
  Hypergraph g;
  g.AddNode();
  EXPECT_TRUE(g.AddEdge({0}, {5}).status().IsInvalidArgument());
  EXPECT_TRUE(g.AddEdge({9}, {0}).status().IsInvalidArgument());
}

TEST(HypergraphTest, CoalescesDuplicateNodesInEdge) {
  Hypergraph g;
  g.AddNodes(3);
  EdgeId e = *g.AddEdge({0, 0, 1}, {2, 2});
  EXPECT_EQ(g.edge(e).tail.size(), 2u);
  EXPECT_EQ(g.edge(e).head.size(), 1u);
}

TEST(HypergraphTest, RemoveEdgeUpdatesStars) {
  Fig1Graph f = BuildFig1();
  ASSERT_TRUE(f.g.RemoveEdge(f.t4).ok());
  EXPECT_EQ(f.g.num_edges(), 6);
  EXPECT_FALSE(f.g.IsLiveEdge(f.t4));
  EXPECT_TRUE(f.g.bstar(f.v6).empty());
  EXPECT_EQ(f.g.fstar(f.v1).size(), 2u);
  // Removing twice fails.
  EXPECT_TRUE(f.g.RemoveEdge(f.t4).IsNotFound());
}

TEST(HypergraphTest, LiveEdgesSkipsRemoved) {
  Fig1Graph f = BuildFig1();
  ASSERT_TRUE(f.g.RemoveEdge(f.t6).ok());
  std::vector<EdgeId> live = f.g.LiveEdges();
  EXPECT_EQ(live.size(), 6u);
  EXPECT_EQ(std::count(live.begin(), live.end(), f.t6), 0);
}

TEST(BConnectivityTest, SourceReachesEverything) {
  Fig1Graph f = BuildFig1();
  std::vector<bool> reach = f.g.BConnectedFrom({f.s});
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    EXPECT_TRUE(reach[static_cast<size_t>(v)]) << "node " << v;
  }
}

TEST(BConnectivityTest, RequiresAllTailNodes) {
  // v5 needs BOTH v4 and v2: from {v4} alone it is not B-connected.
  Fig1Graph f = BuildFig1();
  std::vector<bool> reach = f.g.BConnectedFrom({f.v4});
  EXPECT_FALSE(reach[static_cast<size_t>(f.v5)]);
  reach = f.g.BConnectedFrom({f.v4, f.v2});
  EXPECT_TRUE(reach[static_cast<size_t>(f.v5)]);
}

TEST(BConnectivityTest, RestrictedToSubhypergraph) {
  Fig1Graph f = BuildFig1();
  // Without t3, v5 is unreachable even from s.
  std::vector<EdgeId> edges = {f.l0, f.t1, f.t2, f.t4, f.t5, f.t6};
  std::vector<bool> reach = f.g.BConnectedFrom({f.s}, &edges);
  EXPECT_TRUE(reach[static_cast<size_t>(f.v4)]);
  EXPECT_FALSE(reach[static_cast<size_t>(f.v5)]);
  EXPECT_FALSE(reach[static_cast<size_t>(f.v8)]);
}

TEST(BConnectivityTest, AreBConnectedOnTargets) {
  Fig1Graph f = BuildFig1();
  EXPECT_TRUE(f.g.AreBConnected({f.v7, f.v8}, {f.s}));
  EXPECT_FALSE(f.g.AreBConnected({f.v8}, {f.v6}));
}

TEST(TopologicalOrderTest, OrdersPlanEdges) {
  Fig1Graph f = BuildFig1();
  std::vector<EdgeId> plan = {f.t6, f.t3, f.t2, f.t4, f.t1, f.l0};
  auto order = BTopologicalEdgeOrder(f.g, plan, {f.s});
  ASSERT_TRUE(order.ok());
  ASSERT_EQ(order->size(), plan.size());
  auto position = [&](EdgeId e) {
    return std::find(order->begin(), order->end(), e) - order->begin();
  };
  EXPECT_LT(position(f.l0), position(f.t1));
  EXPECT_LT(position(f.t1), position(f.t2));
  EXPECT_LT(position(f.t2), position(f.t3));
  EXPECT_LT(position(f.t3), position(f.t6));
  EXPECT_LT(position(f.t4), position(f.t6));
}

TEST(TopologicalOrderTest, DetectsNonExecutablePlan) {
  Fig1Graph f = BuildFig1();
  // t3 without t2: v4 never becomes available.
  std::vector<EdgeId> plan = {f.l0, f.t1, f.t3};
  EXPECT_TRUE(
      BTopologicalEdgeOrder(f.g, plan, {f.s}).status().IsFailedPrecondition());
}

TEST(PlanValidityTest, ValidAndMinimal) {
  Fig1Graph f = BuildFig1();
  std::vector<EdgeId> plan = {f.l0, f.t1, f.t2, f.t3, f.t4, f.t6};
  EXPECT_TRUE(IsValidPlan(f.g, plan, {f.s}, {f.v8}));
  EXPECT_TRUE(IsMinimalPlan(f.g, plan, {f.s}, {f.v8}));
}

TEST(PlanValidityTest, NonMinimalDetected) {
  Fig1Graph f = BuildFig1();
  // t5 contributes nothing toward v8.
  std::vector<EdgeId> plan = {f.l0, f.t1, f.t2, f.t3, f.t4, f.t5, f.t6};
  EXPECT_TRUE(IsValidPlan(f.g, plan, {f.s}, {f.v8}));
  EXPECT_FALSE(IsMinimalPlan(f.g, plan, {f.s}, {f.v8}));
}

TEST(PlanValidityTest, InvalidWhenMissingDependency) {
  Fig1Graph f = BuildFig1();
  std::vector<EdgeId> plan = {f.l0, f.t1, f.t3, f.t4, f.t6};  // no t2
  EXPECT_FALSE(IsValidPlan(f.g, plan, {f.s}, {f.v8}));
}

TEST(BackwardRelevanceTest, CollectsAncestorClosure) {
  Fig1Graph f = BuildFig1();
  RelevanceClosure closure = BackwardRelevance(f.g, {f.v5});
  // v5's derivation needs t3, t2, t1, l0 and their nodes.
  EXPECT_TRUE(closure.edge_relevant[static_cast<size_t>(f.t3)]);
  EXPECT_TRUE(closure.edge_relevant[static_cast<size_t>(f.t2)]);
  EXPECT_TRUE(closure.edge_relevant[static_cast<size_t>(f.t1)]);
  EXPECT_TRUE(closure.edge_relevant[static_cast<size_t>(f.l0)]);
  EXPECT_FALSE(closure.edge_relevant[static_cast<size_t>(f.t4)]);
  EXPECT_FALSE(closure.edge_relevant[static_cast<size_t>(f.t6)]);
  EXPECT_TRUE(closure.node_relevant[static_cast<size_t>(f.v1)]);
  EXPECT_FALSE(closure.node_relevant[static_cast<size_t>(f.v6)]);
}

TEST(DepthTest, ChainDepths) {
  // s -> a -> b -> c as single-head edges.
  Hypergraph g;
  NodeId s = g.AddNode();
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  NodeId c = g.AddNode();
  *g.AddEdge({s}, {a});
  *g.AddEdge({a}, {b});
  *g.AddEdge({b}, {c});
  std::vector<double> depth = AverageDepthFromSource(g, s);
  EXPECT_DOUBLE_EQ(depth[static_cast<size_t>(s)], 0.0);
  EXPECT_DOUBLE_EQ(depth[static_cast<size_t>(a)], 1.0);
  EXPECT_DOUBLE_EQ(depth[static_cast<size_t>(b)], 2.0);
  EXPECT_DOUBLE_EQ(depth[static_cast<size_t>(c)], 3.0);
}

TEST(DepthTest, AveragesOverAlternatives) {
  // b has two derivations: directly from s (depth 1) and via a (depth 2):
  // average 1.5.
  Hypergraph g;
  NodeId s = g.AddNode();
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  *g.AddEdge({s}, {a});
  *g.AddEdge({s}, {b});
  *g.AddEdge({a}, {b});
  std::vector<double> depth = AverageDepthFromSource(g, s);
  EXPECT_DOUBLE_EQ(depth[static_cast<size_t>(b)], 1.5);
}

TEST(DepthTest, UnreachableIsInfinite) {
  Hypergraph g;
  NodeId s = g.AddNode();
  NodeId orphan = g.AddNode();
  (void)s;
  std::vector<double> depth = AverageDepthFromSource(g, s);
  EXPECT_TRUE(std::isinf(depth[static_cast<size_t>(orphan)]));
}

TEST(DotExportTest, ContainsNodesAndEdges) {
  Fig1Graph f = BuildFig1();
  const std::string dot = f.g.ToDot("fig1");
  EXPECT_NE(dot.find("digraph \"fig1\""), std::string::npos);
  EXPECT_NE(dot.find("v0 ->"), std::string::npos);
  EXPECT_NE(dot.find("-> v8"), std::string::npos);
}

// Property sweep: on random DAG-like hypergraphs, forward chaining from s
// matches a brute-force recursive definition of B-connectivity.
class BConnectivityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BConnectivityPropertyTest, MatchesRecursiveDefinition) {
  Rng rng(GetParam());
  Hypergraph g;
  const int n = 12;
  NodeId s = g.AddNode();
  for (int i = 1; i < n; ++i) {
    g.AddNode();
  }
  // Random forward edges.
  for (int e = 0; e < 18; ++e) {
    NodeId head = static_cast<NodeId>(1 + rng.NextBelow(n - 1));
    std::vector<NodeId> tail;
    const int tails = 1 + static_cast<int>(rng.NextBelow(2));
    for (int t = 0; t < tails; ++t) {
      tail.push_back(static_cast<NodeId>(rng.NextBelow(
          static_cast<uint64_t>(head))));
    }
    *g.AddEdge(tail, {head});
  }
  std::vector<bool> chained = g.BConnectedFrom({s});
  // Reference: iterate the recursive definition to a fixed point.
  std::vector<bool> reference(static_cast<size_t>(n), false);
  reference[static_cast<size_t>(s)] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e : g.LiveEdges()) {
      bool all = true;
      for (NodeId u : g.edge(e).tail) {
        all = all && reference[static_cast<size_t>(u)];
      }
      if (!all) {
        continue;
      }
      for (NodeId h : g.edge(e).head) {
        if (!reference[static_cast<size_t>(h)]) {
          reference[static_cast<size_t>(h)] = true;
          changed = true;
        }
      }
    }
  }
  EXPECT_EQ(chained, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BConnectivityPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace hyppo
