#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dictionary.h"
#include "core/graph.h"
#include "core/parser.h"
#include "ml/registry.h"

namespace hyppo::core {
namespace {

Result<Pipeline> Parse(const std::string& code) {
  const Dictionary dictionary =
      Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  return ParsePipeline(code, "parser-errors", dictionary);
}

// Asserts `code` fails to parse with a diagnostic locating `line` and
// containing every expected fragment. Malformed DSL must never produce a
// generic failure: the status is a ParseError and names the line.
void ExpectParseErrorAt(const std::string& code, int line,
                        const std::vector<std::string>& fragments,
                        bool expect_column = true) {
  const Result<Pipeline> result = Parse(code);
  ASSERT_FALSE(result.ok()) << code;
  EXPECT_TRUE(result.status().IsParseError()) << result.status();
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("line " + std::to_string(line)), std::string::npos)
      << message;
  if (expect_column) {
    EXPECT_NE(message.find(", col "), std::string::npos) << message;
  }
  for (const std::string& fragment : fragments) {
    EXPECT_NE(message.find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << message;
  }
}

constexpr const char* kValidPipeline =
    R"(d = load("higgs", rows=200, cols=6)
tr, te = sk.TrainTestSplit.split(d)
sc = sk.StandardScaler.fit(tr)
tr_s = sc.transform(tr)
m = sk.DecisionTreeClassifier.fit(tr_s)
p = m.predict(te)
acc = evaluate(p, te, metric="accuracy")
)";

TEST(ParserErrorsTest, StatementWithoutAssignment) {
  ExpectParseErrorAt("just some words\n", 1, {"expected an assignment"});
}

TEST(ParserErrorsTest, AssignmentWithoutCall) {
  ExpectParseErrorAt("x = 5\n", 1, {"expected a call expression"});
}

TEST(ParserErrorsTest, EmptyRightHandSide) {
  ExpectParseErrorAt("x =\n", 1, {"expected a call expression"});
}

TEST(ParserErrorsTest, EmptyAssignmentTarget) {
  ExpectParseErrorAt(", x = load(\"d\", rows=10, cols=2)\n", 1,
                     {"empty assignment target"});
}

TEST(ParserErrorsTest, ErrorOnLaterLineIsLocated) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "y = nonsense\n";
  ExpectParseErrorAt(code, 2, {"expected a call expression"});
}

TEST(ParserErrorsTest, UnknownFrameworkAlias) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "tr, te = sk.TrainTestSplit.split(d)\n"
      "sc = torch.StandardScaler.fit(tr)\n";
  ExpectParseErrorAt(code, 3, {"unknown framework alias", "torch"});
}

TEST(ParserErrorsTest, UnknownVariableNamesTheVariable) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "sc = sk.StandardScaler.fit(ghost)\n";
  ExpectParseErrorAt(code, 2, {"unknown variable 'ghost'"});
}

TEST(ParserErrorsTest, UnknownMethodNamesTheMethod) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "sc = sk.StandardScaler.fit(d)\n"
      "y = sc.frobnicate(d)\n";
  ExpectParseErrorAt(code, 3, {"unknown method 'frobnicate'"});
}

TEST(ParserErrorsTest, EmptyArgument) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "tr, te = sk.TrainTestSplit.split(d,)\n";
  ExpectParseErrorAt(code, 2, {"empty argument"});
}

TEST(ParserErrorsTest, LoadWithWrongOutputCount) {
  ExpectParseErrorAt("a, b = load(\"d\", rows=10, cols=2)\n", 1,
                     {"load produces one artifact"},
                     /*expect_column=*/false);
}

TEST(ParserErrorsTest, LoadWithoutShape) {
  ExpectParseErrorAt("d = load(\"higgs\")\n", 1,
                     {"load requires a dataset id and rows=/cols="});
}

TEST(ParserErrorsTest, EvaluateWithWrongOutputCount) {
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "tr, te = sk.TrainTestSplit.split(d)\n"
      "sc = sk.StandardScaler.fit(tr)\n"
      "p = sc.transform(te)\n"
      "a, b = evaluate(p, te, metric=\"accuracy\")\n";
  ExpectParseErrorAt(code, 5, {"produces one value"});
}

TEST(ParserErrorsTest, OperatorCallWithoutInputs) {
  const std::string code = "sc = sk.StandardScaler.fit()\n";
  ExpectParseErrorAt(code, 1, {"operator call needs at least one input"});
}

TEST(ParserErrorsTest, ColumnPointsIntoTheLine) {
  // "ghost" starts at column 28 of the second line.
  const std::string code =
      "d = load(\"higgs\", rows=200, cols=6)\n"
      "sc = sk.StandardScaler.fit(ghost)\n";
  const Result<Pipeline> result = Parse(code);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("line 2, col 28"),
            std::string::npos)
      << result.status();
}

// The parser stamps each task with its DSL statement line so downstream
// static-analysis diagnostics carry source locations.
TEST(ParserErrorsTest, TasksCarrySourceLines) {
  const Result<Pipeline> pipeline = Parse(kValidPipeline);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  const PipelineGraph& g = pipeline->graph;
  std::vector<int> lines;
  for (EdgeId e = 0; e < g.num_tasks(); ++e) {
    if (g.task(e).type == TaskType::kLoad) {
      continue;
    }
    lines.push_back(g.task(e).source_line);
  }
  EXPECT_EQ(lines, (std::vector<int>{2, 3, 4, 5, 6, 7}));
}

// Seeded fuzz loop: random mutations of a valid program must either parse
// or fail with a ParseError — never crash, and never return a non-parse
// failure class.
TEST(ParserErrorsTest, FuzzedInputsNeverCrash) {
  Rng rng(20240807);
  const std::string base = kValidPipeline;
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.NextBelow(4)) {
        case 0: {  // replace one byte with random printable/control char
          if (mutated.empty()) break;
          const size_t pos = rng.NextBelow(mutated.size());
          mutated[pos] = static_cast<char>(rng.UniformInt(1, 126));
          break;
        }
        case 1: {  // truncate at a random point
          if (mutated.empty()) break;
          mutated.resize(rng.NextBelow(mutated.size()));
          break;
        }
        case 2: {  // insert random garbage
          const size_t pos = rng.NextBelow(mutated.size() + 1);
          std::string garbage;
          for (uint64_t i = rng.NextBelow(8); i > 0; --i) {
            garbage.push_back(static_cast<char>(rng.UniformInt(1, 126)));
          }
          mutated.insert(pos, garbage);
          break;
        }
        default: {  // duplicate a random chunk (re-used variable names etc.)
          if (mutated.empty()) break;
          const size_t from = rng.NextBelow(mutated.size());
          const size_t len = rng.NextBelow(mutated.size() - from + 1);
          mutated.insert(rng.NextBelow(mutated.size() + 1),
                         mutated.substr(from, len));
          break;
        }
      }
    }
    const Result<Pipeline> result = Parse(mutated);
    // A mutated program may parse, fail to parse, or build an empty
    // pipeline — but a parse failure must always locate its line.
    if (!result.ok() && result.status().IsParseError()) {
      EXPECT_NE(result.status().ToString().find("line "), std::string::npos)
          << "unlocated parse error for input <<<" << mutated
          << ">>>: " << result.status();
    }
  }
}

}  // namespace
}  // namespace hyppo::core
