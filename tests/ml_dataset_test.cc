#include <gtest/gtest.h>

#include <cmath>

#include "ml/config.h"
#include "ml/dataset.h"
#include "ml/linalg.h"
#include "ml/metrics.h"

namespace hyppo::ml {
namespace {

TEST(DatasetTest, ShapeAndAccess) {
  Dataset data(4, 3);
  EXPECT_EQ(data.rows(), 4);
  EXPECT_EQ(data.cols(), 3);
  data.at(2, 1) = 7.5;
  EXPECT_DOUBLE_EQ(data.at(2, 1), 7.5);
  EXPECT_DOUBLE_EQ(data.col_data(1)[2], 7.5);
  EXPECT_EQ(data.column_names().size(), 3u);
}

TEST(DatasetTest, CopyRowGathersAcrossColumns) {
  Dataset data(2, 3);
  for (int64_t c = 0; c < 3; ++c) {
    data.at(1, c) = static_cast<double>(10 + c);
  }
  double row[3];
  data.CopyRow(1, row);
  EXPECT_DOUBLE_EQ(row[0], 10.0);
  EXPECT_DOUBLE_EQ(row[2], 12.0);
}

TEST(DatasetTest, TargetHandling) {
  Dataset data(3, 1);
  EXPECT_FALSE(data.has_target());
  data.set_target({1.0, 0.0, 1.0});
  EXPECT_TRUE(data.has_target());
  EXPECT_EQ(data.target().size(), 3u);
}

TEST(DatasetTest, SizeBytesCountsMatrixAndTarget) {
  Dataset data(10, 4);
  EXPECT_EQ(data.SizeBytes(), 10 * 4 * 8);
  data.set_target(std::vector<double>(10, 0.0));
  EXPECT_EQ(data.SizeBytes(), 10 * 4 * 8 + 10 * 8);
}

TEST(DatasetTest, SelectRowsPreservesTargetAndNames) {
  Dataset data = Dataset::WithColumns(4, {"a", "b"});
  for (int64_t r = 0; r < 4; ++r) {
    data.at(r, 0) = static_cast<double>(r);
    data.at(r, 1) = static_cast<double>(10 * r);
  }
  data.set_target({0.0, 1.0, 2.0, 3.0});
  Dataset sub = data.SelectRows({3, 1});
  EXPECT_EQ(sub.rows(), 2);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.target()[0], 3.0);
  EXPECT_EQ(sub.column_names()[1], "b");
}

TEST(DatasetTest, SelectColsValidatesRange) {
  Dataset data(2, 2);
  EXPECT_TRUE(data.SelectCols({0, 5}).status().IsOutOfRange());
  auto sub = data.SelectCols({1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->cols(), 1);
}

TEST(DatasetTest, AddColumnValidatesLength) {
  Dataset data(3, 1);
  EXPECT_TRUE(data.AddColumn("x", {1.0}).IsInvalidArgument());
  ASSERT_TRUE(data.AddColumn("x", {1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(data.cols(), 2);
  EXPECT_DOUBLE_EQ(data.at(2, 1), 3.0);
}

TEST(ConfigTest, TypedGetters) {
  Config config;
  config.Set("name", "ridge");
  config.SetDouble("alpha", 0.5);
  config.SetInt("iters", 100);
  EXPECT_EQ(config.GetString("name", ""), "ridge");
  EXPECT_DOUBLE_EQ(config.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(config.GetInt("iters", 0), 100);
  EXPECT_EQ(config.GetInt("missing", 7), 7);
  EXPECT_TRUE(config.GetBool("missing", true));
}

TEST(ConfigTest, BoolParsing) {
  Config config{{"a", "true"}, {"b", "0"}, {"c", "garbage"}};
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_FALSE(config.GetBool("b", true));
  EXPECT_TRUE(config.GetBool("c", true));
}

TEST(ConfigTest, CanonicalStringIsSorted) {
  Config config;
  config.Set("z", "1");
  config.Set("a", "2");
  EXPECT_EQ(config.ToString(), "a=2,z=1");
}

TEST(LinalgTest, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
  std::vector<double> a = {4, 2, 2, 3};
  auto x = CholeskySolve(a, 2, {10, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_TRUE(CholeskySolve(a, 2, {1, 1}).status().IsInvalidArgument());
}

TEST(LinalgTest, JacobiEigenOnKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> a = {2, 1, 1, 2};
  auto eig = JacobiEigenSymmetric(a, 2);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
  // First eigenvector proportional to (1,1)/sqrt(2).
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(eig->eigenvectors[0]), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::fabs(eig->eigenvectors[1]), inv_sqrt2, 1e-10);
}

TEST(MetricsTest, Accuracy) {
  auto acc = Accuracy({0.9, 0.2, 0.7, 0.1}, {1, 0, 0, 0});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.75);
}

TEST(MetricsTest, F1PerfectAndDegenerate) {
  EXPECT_DOUBLE_EQ(*F1Score({1, 1, 0}, {1, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(*F1Score({0, 0}, {0, 0}), 0.0);
}

TEST(MetricsTest, LogLossBounds) {
  auto good = LogLoss({0.99, 0.01}, {1, 0});
  auto bad = LogLoss({0.01, 0.99}, {1, 0});
  EXPECT_LT(*good, *bad);
  EXPECT_GT(*good, 0.0);
}

TEST(MetricsTest, RmseAndMae) {
  EXPECT_DOUBLE_EQ(*Rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(*Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(*Mae({0, 0}, {3, 4}), 3.5);
}

TEST(MetricsTest, RmsleClampsNegatives) {
  auto result = Rmsle({-5, 0}, {0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result, 0.0);
}

TEST(MetricsTest, R2PerfectIsOne) {
  EXPECT_DOUBLE_EQ(*R2({1, 2, 3}, {1, 2, 3}), 1.0);
  // Predicting the mean gives R2 = 0.
  EXPECT_NEAR(*R2({2, 2, 2}, {1, 2, 3}), 0.0, 1e-12);
}

TEST(MetricsTest, AmsIncreasesWithRecoveredSignal) {
  std::vector<double> truth = {1, 1, 1, 0, 0, 0};
  auto all_found = Ams({1, 1, 1, 0, 0, 0}, truth);
  auto some_found = Ams({1, 0, 0, 0, 0, 0}, truth);
  EXPECT_GT(*all_found, *some_found);
}

TEST(MetricsTest, SizeMismatchRejected) {
  EXPECT_TRUE(Accuracy({1.0}, {1.0, 0.0}).status().IsInvalidArgument());
  EXPECT_TRUE(Rmse({}, {}).status().IsInvalidArgument());
}

TEST(MetricsTest, DispatchKnowsAllMetrics) {
  for (const std::string& metric : KnownMetrics()) {
    EXPECT_TRUE(EvaluateMetric(metric, {1, 0}, {1, 0}).ok()) << metric;
  }
  EXPECT_TRUE(
      EvaluateMetric("nope", {1}, {1}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace hyppo::ml
