// Batch multi-query optimization of hyperparameter sweeps: the sweep
// generator's ground truth, the batch planner's merge/augment-once/plan
// semantics, byte-identity of batch-planned execution against the
// sequential baseline, the serving as_sweep path, and compaction safety
// for in-flight batches.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "baselines/no_optimization.h"
#include "core/batch_planner.h"
#include "core/hyppo.h"
#include "serving/session_manager.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/sweep_generator.h"

namespace hyppo {
namespace {

constexpr double kScale = 0.005;  // ~400-row datasets: fast real execution

workload::SweepGenerator MakeGenerator(uint64_t seed = 11) {
  return workload::SweepGenerator(workload::UseCase::Higgs(), kScale, seed);
}

void RegisterSweepDataset(core::Runtime* runtime) {
  const workload::UseCase use_case = workload::UseCase::Higgs();
  runtime->RegisterDatasetGenerator(
      use_case.DatasetId(kScale), [use_case]() {
        return workload::GenerateUseCase(use_case, kScale, 7);
      });
}

core::HyppoSystem::Options SystemOptions(bool batch_planning) {
  core::HyppoSystem::Options options;
  options.runtime.simulate = false;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.runtime.batch_planning = batch_planning;
  // Byte-identity comparisons need pinned implementations: equivalence
  // augmentation may legally swap in an equivalent-but-not-bitwise impl,
  // and history state (which differs between batch and sequential modes)
  // steers that choice. Same convention as the serving suites.
  options.method.augment.use_equivalences = false;
  return options;
}

Result<std::map<std::string, std::string>> PayloadBytes(
    const std::map<std::string, storage::ArtifactPayload>& payloads) {
  std::map<std::string, std::string> bytes;
  for (const auto& [name, payload] : payloads) {
    HYPPO_ASSIGN_OR_RETURN(std::string serialized,
                           storage::SerializePayload(payload));
    bytes[name] = std::move(serialized);
  }
  return bytes;
}

// Union of per-member target payload bytes across a batch report.
Result<std::map<std::string, std::string>> ReportBytes(
    const core::HyppoSystem::BatchRunReport& report) {
  std::map<std::string, std::string> bytes;
  for (const core::HyppoSystem::RunReport& member : report.reports) {
    HYPPO_ASSIGN_OR_RETURN(auto member_bytes,
                           PayloadBytes(member.target_payloads));
    for (auto& [name, value] : member_bytes) {
      bytes[name] = std::move(value);
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Sweep generator: determinism, grid semantics, and ground truth.

TEST(SweepGeneratorTest, DemoSweepIsDeterministicAndStageTreeShaped) {
  auto g1 = MakeGenerator();
  auto g2 = MakeGenerator();
  auto w1 = g1.DemoSweep(12, "sweep");
  auto w2 = g2.DemoSweep(12, "sweep");
  ASSERT_TRUE(w1.ok()) << w1.status();
  ASSERT_TRUE(w2.ok()) << w2.status();
  ASSERT_EQ(w1->pipelines.size(), 12u);
  ASSERT_EQ(w1->specs.size(), 12u);
  // One preprocessing trunk: every member shares the prefix signature.
  EXPECT_EQ(w1->distinct_prefixes, 1);
  for (const std::string& sig : w1->prefix_signatures) {
    EXPECT_EQ(sig, w1->prefix_signatures[0]);
  }
  // The trunk folds: merging must remove a positive number of tasks.
  EXPECT_GT(w1->expected_merged_tasks, 0);
  // Determinism: identical specs and graphs from identical seeds.
  for (size_t i = 0; i < w1->specs.size(); ++i) {
    EXPECT_EQ(w1->specs[i].model.Signature(), w2->specs[i].model.Signature());
    EXPECT_EQ(w1->pipelines[i].graph.num_artifacts(),
              w2->pipelines[i].graph.num_artifacts());
    EXPECT_EQ(w1->pipelines[i].id, w2->pipelines[i].id);
  }
  // Configs are distinct: a sweep never submits duplicate members.
  std::set<std::string> model_signatures;
  for (const auto& spec : w1->specs) {
    model_signatures.insert(spec.model.Signature());
  }
  EXPECT_EQ(model_signatures.size(), 12u);
}

TEST(SweepGeneratorTest, GridTruncationAndRandomDedup) {
  auto generator = MakeGenerator();
  const workload::PipelineSpec base = generator.DemoBaseSpec();
  std::vector<workload::SweepAxis> axes(2);
  axes[0].stage = workload::SweepAxis::Stage::kModel;
  axes[0].param = "n_estimators";
  axes[0].values = {"8", "12", "16"};
  axes[1].stage = workload::SweepAxis::Stage::kModel;
  axes[1].param = "max_depth";
  axes[1].values = {"3", "5"};

  workload::SweepOptions full;  // num_configs = 0: full cross product
  auto w_full = generator.Generate(base, axes, full, "full");
  ASSERT_TRUE(w_full.ok()) << w_full.status();
  EXPECT_EQ(w_full->pipelines.size(), 6u);

  workload::SweepOptions truncated;
  truncated.num_configs = 4;
  auto w_trunc = generator.Generate(base, axes, truncated, "trunc");
  ASSERT_TRUE(w_trunc.ok()) << w_trunc.status();
  ASSERT_EQ(w_trunc->pipelines.size(), 4u);
  // Lexicographic truncation: the first 4 of the full grid.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(w_trunc->specs[i].model.Signature(),
              w_full->specs[i].model.Signature());
  }

  workload::SweepOptions random;
  random.mode = workload::SweepOptions::Mode::kRandom;
  random.num_configs = 5;
  random.seed = 99;
  auto w_random = generator.Generate(base, axes, random, "rand");
  ASSERT_TRUE(w_random.ok()) << w_random.status();
  EXPECT_EQ(w_random->pipelines.size(), 5u);
  std::set<std::string> distinct;
  for (const auto& spec : w_random->specs) {
    distinct.insert(spec.model.Signature());
  }
  EXPECT_EQ(distinct.size(), 5u);  // joint draws are deduplicated

  // Requesting more configs than the joint space holds returns the
  // space, not an infinite loop.
  random.num_configs = 50;
  auto w_exhausted = generator.Generate(base, axes, random, "exhaust");
  ASSERT_TRUE(w_exhausted.ok()) << w_exhausted.status();
  EXPECT_EQ(w_exhausted->pipelines.size(), 6u);
}

// ---------------------------------------------------------------------------
// Batch planner: signature-dedup merge and per-member planning.

TEST(BatchPlannerTest, MergeFoldsSharedPrefixToGroundTruth) {
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(8, "merge");
  ASSERT_TRUE(workload.ok()) << workload.status();
  std::vector<std::vector<NodeId>> member_targets;
  core::BatchPlanner::Stats stats;
  auto merged = core::BatchPlanner::MergePipelines(workload->pipelines,
                                                   &member_targets, &stats);
  ASSERT_TRUE(merged.ok()) << merged.status();
  // The merge folds exactly the tasks the generator's ground truth says
  // are duplicated across members.
  EXPECT_EQ(stats.merged_tasks, workload->expected_merged_tasks);
  ASSERT_EQ(member_targets.size(), workload->pipelines.size());
  // Every member's targets map to merged nodes carrying the same
  // canonical names.
  for (size_t i = 0; i < workload->pipelines.size(); ++i) {
    const core::Pipeline& member = workload->pipelines[i];
    ASSERT_EQ(member_targets[i].size(), member.targets.size());
    for (size_t t = 0; t < member.targets.size(); ++t) {
      EXPECT_EQ(merged->graph.artifact(member_targets[i][t]).name,
                member.graph.artifact(member.targets[t]).name);
    }
  }
  // Merging one pipeline is the identity on task count.
  std::vector<core::Pipeline> solo;
  solo.push_back(workload->pipelines[0]);
  core::BatchPlanner::Stats solo_stats;
  auto solo_merged =
      core::BatchPlanner::MergePipelines(solo, nullptr, &solo_stats);
  ASSERT_TRUE(solo_merged.ok()) << solo_merged.status();
  EXPECT_EQ(solo_stats.merged_tasks, 0);
}

TEST(BatchPlannerTest, PlanBatchCoversEveryMembersTargets) {
  core::HyppoSystem::Options options = SystemOptions(true);
  options.runtime.simulate = true;  // planning-only: no real execution
  core::HyppoSystem system(options);
  RegisterSweepDataset(&system.runtime());
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(6, "plan");
  ASSERT_TRUE(workload.ok()) << workload.status();

  auto planned = system.method().PlanPipelineBatch(workload->pipelines);
  ASSERT_TRUE(planned.ok()) << planned.status();
  ASSERT_EQ(planned->members.size(), workload->pipelines.size());
  EXPECT_EQ(planned->stats.merged_tasks, workload->expected_merged_tasks);
  // Shared-prefix plan edges: with one trunk, most members select the
  // same prefix tasks, so the planner must report cross-member sharing.
  EXPECT_GT(planned->stats.shared_prefix_hits, 0);
  // Each member plan produces each of its targets.
  for (const core::BatchPlanner::MemberPlan& member : planned->members) {
    ASSERT_FALSE(member.plan.edges.empty());
    std::set<NodeId> produced;
    for (EdgeId e : member.plan.edges) {
      for (NodeId v : planned->merged.graph.ordered_head(e)) {
        produced.insert(v);
      }
    }
    for (NodeId target : member.targets) {
      EXPECT_TRUE(produced.count(target) > 0)
          << "target " << planned->merged.graph.artifact(target).name
          << " not produced by its member plan";
    }
  }
  // Monitor plumbing: the batch counters moved.
  EXPECT_GT(system.runtime().monitor().num_batch_merged_tasks(), 0);
  EXPECT_GT(system.runtime().monitor().batch_plan_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Differential: batch-planned execution is byte-identical to the
// sequentially planned baseline, serial and 8-thread.

void RunBatchVsSequential(int parallelism) {
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(6, "diff");
  ASSERT_TRUE(workload.ok()) << workload.status();

  core::HyppoSystem::Options batch_options = SystemOptions(true);
  batch_options.runtime.parallelism = parallelism;
  core::HyppoSystem batch_system(batch_options);
  RegisterSweepDataset(&batch_system.runtime());
  auto batch_report = batch_system.RunBatch(workload->pipelines);
  ASSERT_TRUE(batch_report.ok()) << batch_report.status();
  EXPECT_TRUE(batch_report->batched);
  EXPECT_EQ(batch_report->merged_tasks, workload->expected_merged_tasks);
  // Cross-member seeding: shared prefixes execute once, later members
  // skip them.
  EXPECT_GT(batch_report->shared_prefix_skips, 0);
  ASSERT_EQ(batch_report->reports.size(), workload->pipelines.size());

  core::HyppoSystem::Options seq_options = SystemOptions(false);
  seq_options.runtime.parallelism = parallelism;
  core::HyppoSystem seq_system(seq_options);
  RegisterSweepDataset(&seq_system.runtime());
  auto seq_report = seq_system.RunBatch(workload->pipelines);
  ASSERT_TRUE(seq_report.ok()) << seq_report.status();
  EXPECT_FALSE(seq_report->batched);

  auto batch_bytes = ReportBytes(*batch_report);
  auto seq_bytes = ReportBytes(*seq_report);
  ASSERT_TRUE(batch_bytes.ok()) << batch_bytes.status();
  ASSERT_TRUE(seq_bytes.ok()) << seq_bytes.status();
  ASSERT_FALSE(batch_bytes->empty());
  ASSERT_EQ(batch_bytes->size(), seq_bytes->size());
  for (const auto& [name, bytes] : *batch_bytes) {
    auto it = seq_bytes->find(name);
    ASSERT_NE(it, seq_bytes->end()) << name;
    EXPECT_EQ(bytes, it->second) << "payload diverged: " << name;
  }
  // Both histories stay internally consistent.
  const analysis::Verifier verifier;
  EXPECT_TRUE(verifier.VerifyHistory(batch_system.runtime().history()).ok());
  EXPECT_TRUE(verifier.VerifyHistory(seq_system.runtime().history()).ok());
}

TEST(SweepDifferentialTest, BatchMatchesSequentialSerial) {
  RunBatchVsSequential(1);
}

TEST(SweepDifferentialTest, BatchMatchesSequentialEightThreads) {
  RunBatchVsSequential(8);
}

// ---------------------------------------------------------------------------
// Serving: a session submitting its pipelines as a sweep.

TEST(SweepServingTest, AsSweepSessionMatchesSequentialSession) {
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(5, "serve");
  ASSERT_TRUE(workload.ok()) << workload.status();

  serving::ServingOptions sweep_options;
  sweep_options.runtime = SystemOptions(true).runtime;
  sweep_options.method = SystemOptions(true).method;
  serving::SessionManager sweep_manager(sweep_options);
  RegisterSweepDataset(&sweep_manager.runtime());
  serving::SessionRequest sweep_request;
  sweep_request.session_id = "sweeper";
  sweep_request.pipelines = workload->pipelines;
  sweep_request.as_sweep = true;
  const serving::SessionReport sweep_report =
      sweep_manager.RunSession(sweep_request);
  ASSERT_TRUE(sweep_report.status.ok()) << sweep_report.status;
  EXPECT_EQ(sweep_report.pipelines_completed,
            static_cast<int32_t>(workload->pipelines.size()));
  EXPECT_EQ(sweep_report.per_pipeline_seconds.size(),
            workload->pipelines.size());
  // The runtime observed the cross-member prefix skips.
  EXPECT_GT(sweep_manager.runtime().monitor().num_shared_prefix_hits(), 0);

  serving::ServingOptions seq_options;
  seq_options.runtime = SystemOptions(true).runtime;
  seq_options.method = SystemOptions(true).method;
  serving::SessionManager seq_manager(seq_options);
  RegisterSweepDataset(&seq_manager.runtime());
  serving::SessionRequest seq_request;
  seq_request.session_id = "sequential";
  seq_request.pipelines = workload->pipelines;  // as_sweep stays false
  const serving::SessionReport seq_report =
      seq_manager.RunSession(seq_request);
  ASSERT_TRUE(seq_report.status.ok()) << seq_report.status;

  auto sweep_bytes = PayloadBytes(sweep_report.target_payloads);
  auto seq_bytes = PayloadBytes(seq_report.target_payloads);
  ASSERT_TRUE(sweep_bytes.ok()) << sweep_bytes.status();
  ASSERT_TRUE(seq_bytes.ok()) << seq_bytes.status();
  ASSERT_FALSE(sweep_bytes->empty());
  EXPECT_EQ(*sweep_bytes, *seq_bytes);
}

TEST(SweepServingTest, BaselineMethodsFallBackToSequentialLoop) {
  // A method without PlanPipelineBatch (here the no-optimization straw
  // man, which inherits the base Method's NotImplemented default) must
  // still serve an as_sweep request via the ordered sequential loop.
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(3, "fallback");
  ASSERT_TRUE(workload.ok()) << workload.status();

  serving::ServingOptions options;
  options.runtime = SystemOptions(true).runtime;
  options.make_method = [](core::Runtime* runtime) {
    return std::make_unique<baselines::NoOptimizationMethod>(runtime);
  };
  serving::SessionManager manager(options);
  RegisterSweepDataset(&manager.runtime());
  serving::SessionRequest request;
  request.session_id = "no-batch";
  request.pipelines = workload->pipelines;
  request.as_sweep = true;
  const serving::SessionReport report = manager.RunSession(request);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.pipelines_completed,
            static_cast<int32_t>(workload->pipelines.size()));
  ASSERT_FALSE(report.target_payloads.empty());
}

// ---------------------------------------------------------------------------
// Compaction safety: a batch in flight pins the merged augmentation's
// artifact names, so Pareto compaction firing mid-batch (tiny growth
// bound) cannot drop artifacts later members still load. Regression for
// the pre-compaction-snapshot contract on the batch path.

TEST(SweepServingTest, CompactionDuringBatchKeepsPinnedArtifacts) {
  auto generator = MakeGenerator();
  auto workload = generator.DemoSweep(6, "compact");
  ASSERT_TRUE(workload.ok()) << workload.status();

  serving::ServingOptions options;
  options.runtime = SystemOptions(true).runtime;
  options.method = SystemOptions(true).method;
  // Each member adds ~14 artifacts: the batch pushes the history well
  // over this bound, so compaction runs while members are still
  // executing — and must drop nothing, because the whole merged graph is
  // pinned for the duration of the batch.
  options.runtime.history_max_artifacts = 20;
  serving::SessionManager manager(options);
  RegisterSweepDataset(&manager.runtime());
  serving::SessionRequest request;
  request.session_id = "compacting-sweeper";
  request.pipelines = workload->pipelines;
  request.as_sweep = true;
  const serving::SessionReport report = manager.RunSession(request);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.pipelines_completed,
            static_cast<int32_t>(workload->pipelines.size()));
  // Pinning held: every artifact of every member is still in the
  // history, which therefore could not be trimmed back under the bound.
  ASSERT_GT(manager.runtime().history().num_artifacts(),
            options.runtime.history_max_artifacts)
      << "test premise broken: the batch never exceeded the bound";
  for (const core::Pipeline& pipeline : workload->pipelines) {
    // Node 0 is the virtual source; every other artifact was pinned.
    for (NodeId v = 1; v < pipeline.graph.num_artifacts(); ++v) {
      EXPECT_TRUE(manager.runtime()
                      .history()
                      .FindArtifact(pipeline.graph.artifact(v).name)
                      .ok())
          << "dropped mid-batch: " << pipeline.graph.artifact(v).name;
    }
  }

  // Once the batch's pins are gone, the same bound must engage: a
  // follow-up session with fresh configs triggers compaction that now
  // drops nodes.
  auto churn_generator = MakeGenerator();
  std::vector<workload::SweepAxis> churn_axes(1);
  churn_axes[0].stage = workload::SweepAxis::Stage::kModel;
  churn_axes[0].param = "max_depth";
  churn_axes[0].values = {"20", "21", "22"};
  auto churn_workload =
      churn_generator.Generate(churn_generator.DemoBaseSpec(), churn_axes,
                               workload::SweepOptions(), "churn");
  ASSERT_TRUE(churn_workload.ok()) << churn_workload.status();
  serving::SessionRequest churn;
  churn.session_id = "churn";
  churn.pipelines = churn_workload->pipelines;
  ASSERT_TRUE(manager.RunSession(churn).status.ok());
  EXPECT_GT(manager.runtime().monitor().num_history_compacted(), 0)
      << "test premise broken: compaction never dropped nodes after unpin";

  // Byte-identity against an isolated run with no compaction pressure.
  core::HyppoSystem reference_system(SystemOptions(true));
  RegisterSweepDataset(&reference_system.runtime());
  auto reference = reference_system.RunBatch(workload->pipelines);
  ASSERT_TRUE(reference.ok()) << reference.status();
  auto reference_bytes = ReportBytes(*reference);
  auto report_bytes = PayloadBytes(report.target_payloads);
  ASSERT_TRUE(reference_bytes.ok()) << reference_bytes.status();
  ASSERT_TRUE(report_bytes.ok()) << report_bytes.status();
  ASSERT_FALSE(report_bytes->empty());
  EXPECT_EQ(*report_bytes, *reference_bytes);

  const analysis::Verifier verifier;
  EXPECT_TRUE(verifier.VerifyHistory(manager.runtime().history()).ok());
}

}  // namespace
}  // namespace hyppo
