// Materializer policy semantics and Apply() failure atomicity: pins the
// corrected kSff ordering (smallest files first), the zero-score survival
// rule for already-materialized artifacts, the precomputed-Gain overload,
// and the store-then-evict rollback contract.

#include <gtest/gtest.h>

#include "core/augmenter.h"
#include "core/cost_model.h"
#include "core/dictionary.h"
#include "core/history.h"
#include "core/materializer.h"
#include "hypergraph/algorithms.h"
#include "storage/artifact_store.h"
#include "storage/fault_injection.h"

namespace hyppo::core {
namespace {

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t size_bytes) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.size_bytes = size_bytes;
  info.rows = size_bytes / 8;
  info.cols = 1;
  return info;
}

TaskInfo MakeTask(const std::string& lop, TaskType type,
                  const std::string& impl) {
  TaskInfo task;
  task.logical_op = lop;
  task.type = type;
  task.impl = impl;
  return task;
}

/// Delegating store whose Put fails for one chosen key — deterministic
/// mid-batch failure for the Apply() rollback tests.
class FailKeyStore final : public storage::ArtifactStore {
 public:
  explicit FailKeyStore(std::string fail_key)
      : fail_key_(std::move(fail_key)) {}

  Status Put(const std::string& key, storage::ArtifactPayload payload,
             int64_t size_bytes) override {
    if (key == fail_key_) {
      return Status::IoError("injected: store refused '" + key + "'");
    }
    return inner_.Put(key, std::move(payload), size_bytes);
  }
  Result<storage::ArtifactPayload> Get(const std::string& key) const
      override {
    return inner_.Get(key);
  }
  bool Contains(const std::string& key) const override {
    return inner_.Contains(key);
  }
  Status Evict(const std::string& key) override { return inner_.Evict(key); }
  Result<int64_t> SizeOf(const std::string& key) const override {
    return inner_.SizeOf(key);
  }
  int64_t used_bytes() const override { return inner_.used_bytes(); }
  size_t num_entries() const override { return inner_.num_entries(); }
  std::vector<std::string> Keys() const override { return inner_.Keys(); }
  const storage::StorageTier& tier() const override { return inner_.tier(); }

 private:
  std::string fail_key_;
  storage::InMemoryArtifactStore inner_;
};

class MaterializerPolicyTest : public ::testing::Test {
 protected:
  MaterializerPolicyTest()
      : augmenter_(&dictionary_, &estimator_),
        materializer_(&augmenter_) {}

  // s -> raw -> small / big / idle, with distinct sizes and stats.
  void BuildHistory() {
    raw_ = history_.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 100000));
    history_.RegisterSourceData(raw_).ValueOrDie();
    small_ =
        history_.Observe(MakeArtifact("small", ArtifactKind::kOpState, 500));
    big_ = history_.Observe(MakeArtifact("big", ArtifactKind::kTrain, 9000));
    idle_ = history_.Observe(MakeArtifact("idle", ArtifactKind::kTest, 300));
    *history_.ObserveTask(MakeTask("A", TaskType::kFit, "skl.A"), {raw_},
                          {small_}, 4.0);
    *history_.ObserveTask(MakeTask("B", TaskType::kTransform, "skl.B"),
                          {raw_}, {big_}, 2.0);
    *history_.ObserveTask(MakeTask("C", TaskType::kTransform, "skl.C"),
                          {raw_}, {idle_}, 1.0);
    history_.RecordComputeSeconds(small_, 4.0);
    history_.RecordComputeSeconds(big_, 2.0);
    history_.RecordComputeSeconds(idle_, 1.0);
    history_.RecordAccess(small_, 1.0);
    history_.RecordAccess(big_, 1.0);
    history_.RecordAccess(big_, 2.0);
    // idle_ never accessed: LFU scores it 0.
  }

  Dictionary dictionary_;
  CostEstimator estimator_;
  Augmenter augmenter_;
  Materializer materializer_;
  History history_;
  NodeId raw_ = kInvalidNode;
  NodeId small_ = kInvalidNode;
  NodeId big_ = kInvalidNode;
  NodeId idle_ = kInvalidNode;
};

TEST_F(MaterializerPolicyTest, SffKeepsSmallestFiles) {
  BuildHistory();
  Materializer::Options options;
  options.policy = Materializer::Policy::kSff;
  // Budget fits small + idle but not big: smallest-files-first must pick
  // exactly the two smallest.
  options.budget_bytes = 1000;
  Materializer::Decision decision = materializer_.Decide(
      history_, {"small", "big", "idle"}, options);
  EXPECT_EQ(decision.to_store, (std::vector<NodeId>{small_, idle_}));
  EXPECT_EQ(decision.selected_bytes, 800);
}

TEST_F(MaterializerPolicyTest, SffEvictsLargestUnderPressure) {
  BuildHistory();
  storage::InMemoryArtifactStore store;
  std::map<std::string, storage::ArtifactPayload> available = {
      {"small", storage::ArtifactPayload(std::monostate{})},
      {"big", storage::ArtifactPayload(std::monostate{})}};
  Materializer::Options all;
  all.policy = Materializer::Policy::kSff;
  all.budget_bytes = 100000;
  Materializer::Decision decision =
      materializer_.Decide(history_, {"small", "big"}, all);
  ASSERT_TRUE(
      Materializer::Apply(history_, store, decision, available).ok());
  ASSERT_TRUE(history_.IsMaterialized(small_));
  ASSERT_TRUE(history_.IsMaterialized(big_));
  // Shrink under big's size: big goes, small stays.
  Materializer::Options tight;
  tight.policy = Materializer::Policy::kSff;
  tight.budget_bytes = 600;
  decision = materializer_.Decide(history_, {}, tight);
  ASSERT_TRUE(Materializer::Apply(history_, store, decision, {}).ok());
  EXPECT_TRUE(history_.IsMaterialized(small_));
  EXPECT_FALSE(history_.IsMaterialized(big_));
}

TEST_F(MaterializerPolicyTest, ZeroScoreMaterializedSurvivesHeadroom) {
  BuildHistory();
  storage::InMemoryArtifactStore store;
  ASSERT_TRUE(
      store.Put("idle", storage::ArtifactPayload(std::monostate{}), 300)
          .ok());
  ASSERT_TRUE(history_.MarkMaterialized(idle_).ok());
  Materializer::Options lfu;
  lfu.policy = Materializer::Policy::kLfu;
  lfu.budget_bytes = 100000;  // plenty of headroom
  // idle_ has access_count 0 => LFU score 0. It must NOT be force-
  // evicted while the budget has room: a zero score ranks last but is
  // still a keep candidate.
  Materializer::Decision decision = materializer_.Decide(history_, {}, lfu);
  EXPECT_TRUE(decision.to_evict.empty());
  EXPECT_TRUE(history_.IsMaterialized(idle_));

  // Under pressure it is the first to go.
  Materializer::Options tight;
  tight.policy = Materializer::Policy::kLfu;
  tight.budget_bytes = 100;
  decision = materializer_.Decide(history_, {}, tight);
  EXPECT_EQ(decision.to_evict, (std::vector<NodeId>{idle_}));
}

TEST_F(MaterializerPolicyTest, ZeroScoreNeverNewlyStored) {
  BuildHistory();
  Materializer::Options lfu;
  lfu.policy = Materializer::Policy::kLfu;
  lfu.budget_bytes = 100000;
  // idle_ is storable but scores 0: storing it buys nothing, so it must
  // not enter to_store.
  Materializer::Decision decision =
      materializer_.Decide(history_, {"idle"}, lfu);
  EXPECT_TRUE(decision.to_store.empty());
}

TEST_F(MaterializerPolicyTest, GainOverloadMatchesRecomputingForm) {
  BuildHistory();
  Materializer::Options options;
  options.budget_bytes = 100000;
  const std::vector<double> recompute =
      materializer_.RecomputeCosts(history_);
  const std::vector<double> depth = AverageDepthFromSource(
      history_.graph().hypergraph(), history_.graph().source());
  for (NodeId v : {small_, big_, idle_}) {
    EXPECT_DOUBLE_EQ(
        materializer_.Gain(history_, v, options),
        materializer_.Gain(history_, v, options, recompute, depth))
        << "node " << v;
  }
}

// ---------------------------------------------------------------------------
// Apply() failure atomicity.

TEST_F(MaterializerPolicyTest, ApplyMissingPayloadLeavesStateUntouched) {
  BuildHistory();
  storage::InMemoryArtifactStore store;
  Materializer::Decision decision;
  decision.to_store = {small_, big_};
  // Only small's payload is at hand: Apply must refuse up front without
  // storing anything.
  std::map<std::string, storage::ArtifactPayload> available = {
      {"small", storage::ArtifactPayload(std::monostate{})}};
  Status status = Materializer::Apply(history_, store, decision, available);
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_EQ(store.num_entries(), 0u);
  EXPECT_FALSE(history_.IsMaterialized(small_));
  EXPECT_FALSE(history_.IsMaterialized(big_));
}

TEST_F(MaterializerPolicyTest, ApplyRollsBackOnMidBatchPutFailure) {
  BuildHistory();
  FailKeyStore store("small");  // second key in to_store order fails
  Materializer::Decision decision;
  decision.to_store = {big_, small_};
  std::map<std::string, storage::ArtifactPayload> available = {
      {"small", storage::ArtifactPayload(std::monostate{})},
      {"big", storage::ArtifactPayload(std::monostate{})}};
  Status status = Materializer::Apply(history_, store, decision, available);
  EXPECT_TRUE(status.IsIoError());
  // big was stored before small failed; the rollback must have undone it
  // on both sides.
  EXPECT_EQ(store.num_entries(), 0u);
  EXPECT_FALSE(history_.IsMaterialized(big_));
  EXPECT_FALSE(history_.IsMaterialized(small_));
}

TEST_F(MaterializerPolicyTest, ApplyFailureKeepsPriorMaterializations) {
  BuildHistory();
  FailKeyStore store("small");
  // Pre-existing materialization of big must survive a failed Apply that
  // tried to add small.
  ASSERT_TRUE(
      store.Put("big", storage::ArtifactPayload(std::monostate{}), 9000)
          .ok());
  ASSERT_TRUE(history_.MarkMaterialized(big_).ok());
  Materializer::Decision decision;
  decision.to_store = {small_};
  decision.to_evict = {big_};  // would evict big after storing small
  std::map<std::string, storage::ArtifactPayload> available = {
      {"small", storage::ArtifactPayload(std::monostate{})}};
  Status status = Materializer::Apply(history_, store, decision, available);
  EXPECT_TRUE(status.IsIoError());
  // The evict phase never ran: big is still materialized and stored.
  EXPECT_TRUE(history_.IsMaterialized(big_));
  EXPECT_TRUE(store.Contains("big"));
  EXPECT_FALSE(history_.IsMaterialized(small_));
  EXPECT_FALSE(store.Contains("small"));
}

}  // namespace
}  // namespace hyppo::core
