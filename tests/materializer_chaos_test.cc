// Chaos: deterministic store-put faults injected while the materializer
// applies its decisions. After every Apply — successful or rolled back —
// the history and the store must satisfy the store-consistency invariant
// (no materialized artifact without a matching store entry, no orphans,
// accurate used_bytes) and stay within budget.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "analysis/verifier.h"
#include "core/augmenter.h"
#include "core/cost_model.h"
#include "core/dictionary.h"
#include "core/history.h"
#include "core/materializer.h"
#include "storage/fault_injection.h"

namespace hyppo::core {
namespace {

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t size_bytes) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.size_bytes = size_bytes;
  info.rows = size_bytes / 8;
  info.cols = 1;
  return info;
}

TaskInfo MakeTask(const std::string& lop, TaskType type,
                  const std::string& impl) {
  TaskInfo task;
  task.logical_op = lop;
  task.type = type;
  task.impl = impl;
  return task;
}

TEST(MaterializerChaosTest, ApplyStaysConsistentUnderPutFaults) {
  Dictionary dictionary;
  CostEstimator estimator;
  Augmenter augmenter(&dictionary, &estimator);
  Materializer materializer(&augmenter);
  const analysis::Verifier verifier;

  for (uint64_t seed : {1u, 7u, 23u, 99u}) {
    History history;
    storage::InMemoryArtifactStore base;
    storage::FaultPlan plan;
    plan.seed = seed;
    plan.put_failure_rate = 0.4;
    plan.max_faults_per_key = 2;  // transient: retries eventually pass
    storage::FaultInjector injector(plan);
    storage::FaultInjectingStore store(&base, &injector);

    const NodeId raw =
        history.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 100000));
    ASSERT_TRUE(history.RegisterSourceData(raw).ok());
    std::vector<NodeId> nodes;
    std::map<std::string, storage::ArtifactPayload> available;
    std::set<std::string> storable;
    for (int i = 0; i < 12; ++i) {
      const std::string name = "a" + std::to_string(i);
      const NodeId v = history.Observe(MakeArtifact(
          name, i % 2 == 0 ? ArtifactKind::kOpState : ArtifactKind::kTrain,
          200 + 150 * i));
      ASSERT_TRUE(history
                      .ObserveTask(MakeTask("Op" + std::to_string(i),
                                            TaskType::kTransform,
                                            "skl.Op" + std::to_string(i)),
                                   {raw}, {v}, 0.5 + 0.25 * i)
                      .ok());
      history.RecordComputeSeconds(v, 0.5 + 0.25 * i);
      nodes.push_back(v);
      available.emplace(name,
                        storage::ArtifactPayload(static_cast<double>(i)));
      storable.insert(name);
    }

    // Rounds with shifting access stats and a shrinking budget: every
    // round decides + applies under a 40% put-failure rate.
    int64_t failures = 0;
    const int64_t budgets[] = {20000, 9000, 4000, 15000, 1200};
    for (int round = 0; round < 5; ++round) {
      for (size_t k = 0; k < nodes.size(); k += (round % 3) + 1) {
        history.RecordAccess(nodes[k], static_cast<double>(round * 10 + k));
      }
      Materializer::Options options;
      options.budget_bytes = budgets[round];
      Materializer::Decision decision =
          materializer.Decide(history, storable, options);
      Status status =
          Materializer::Apply(history, store, decision, available);
      if (!status.ok()) {
        ++failures;
        EXPECT_TRUE(status.IsIoError()) << status.ToString();
      }
      // The invariant the whole exercise is about: failed or not, the
      // history<->store pair is consistent and within budget.
      const analysis::AnalysisReport report =
          verifier.CheckStoreConsistency(history, store);
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " round " << round << ":\n"
          << report.ToString();
      EXPECT_LE(store.used_bytes(),
                std::max<int64_t>(history.MaterializedBytes(),
                                  options.budget_bytes));
    }
    // The plan's put rate must actually have fired somewhere across the
    // seeds (checked per-seed only via counters, aggregate below).
    EXPECT_GE(injector.counters().injected_put, 0);
    if (injector.counters().injected_put > 0) {
      EXPECT_GE(failures, 1);
    }
  }
}

}  // namespace
}  // namespace hyppo::core
