// Tests for the indexed equivalence-lookup layer (core/history.h's
// HistoryIndex), Pareto history compaction, and the indexed augmenter:
//  - index/graph consistency under randomized mutation interleavings,
//    checked by Verifier::CheckHistoryIndex;
//  - the indexed augmentation path is byte-for-byte equivalent to the
//    reference scan path (differential + validate_index cross-check);
//  - compaction protects sources/materialized artifacts, keeps the
//    per-criterion Pareto anchors, and never leaves a plan worse than
//    executing the pipeline as written;
//  - end-to-end: indexed and scan systems execute byte-identical payloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/augmenter.h"
#include "core/history_io.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "hypergraph/algorithms.h"
#include "storage/serialization.h"
#include "workload/datagen.h"

namespace hyppo::core {
namespace {

using analysis::AnalysisReport;
using analysis::Verifier;

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t size_bytes) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.size_bytes = size_bytes;
  info.rows = size_bytes / 8;
  info.cols = 1;
  return info;
}

TaskInfo MakeTask(const std::string& lop, TaskType type,
                  const std::string& impl) {
  TaskInfo task;
  task.logical_op = lop;
  task.type = type;
  task.impl = impl;
  return task;
}

// data -> split -> scaler fit/transforms -> tree fit -> predict -> eval.
Result<Pipeline> BuildPipeline(const std::string& id,
                               const std::string& scaler_impl,
                               int max_depth = 4) {
  PipelineBuilder builder(id);
  HYPPO_ASSIGN_OR_RETURN(NodeId data,
                         builder.LoadDataset("idx-unit", 2000, 8));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_ASSIGN_OR_RETURN(NodeId scaler,
                         builder.Fit("StandardScaler", scaler_impl,
                                     split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s,
                         builder.Transform(scaler, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s,
                         builder.Transform(scaler, split.second));
  ml::Config config;
  config.SetInt("max_depth", max_depth);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                  train_s, config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

// Records the full pipeline structure (and fake observations) into the
// history, as the runtime would after execution.
void RecordIntoHistory(History& history, const Pipeline& pipeline,
                       double task_seconds) {
  std::map<NodeId, NodeId> to_history;
  for (NodeId v = 1; v < pipeline.graph.num_artifacts(); ++v) {
    to_history[v] = history.Observe(pipeline.graph.artifact(v));
    if (pipeline.graph.artifact(v).kind == ArtifactKind::kRaw) {
      history.RegisterSourceData(to_history[v]).ValueOrDie();
    }
  }
  for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = pipeline.graph.task(e);
    if (task.type == TaskType::kLoad) {
      continue;
    }
    std::vector<NodeId> tails;
    for (NodeId t : pipeline.graph.ordered_tail(e)) {
      if (t != pipeline.graph.source()) {
        tails.push_back(to_history[t]);
      }
    }
    std::vector<NodeId> heads;
    for (NodeId h : pipeline.graph.ordered_head(e)) {
      heads.push_back(to_history[h]);
      history.RecordComputeSeconds(to_history[h], task_seconds);
    }
    history.ObserveTask(task, tails, heads, task_seconds).ValueOrDie();
  }
}

// Reference implementation of the indexed relevance collection: the full
// BackwardRelevance closure flattened over all edge slots.
std::vector<EdgeId> ScanRelevantEdges(const History& history,
                                      const std::vector<NodeId>& matched) {
  const Hypergraph& hg = history.graph().hypergraph();
  const RelevanceClosure closure = BackwardRelevance(hg, matched);
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < hg.num_edge_slots(); ++e) {
    if (hg.IsLiveEdge(e) && closure.edge_relevant[static_cast<size_t>(e)]) {
      out.push_back(e);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Index consistency.

TEST(HistoryIndexTest, FreshHistoryIndexesSourceNode) {
  History history;
  const std::string& source_name =
      history.graph().artifact(history.graph().source()).name;
  ASSERT_TRUE(history.FindArtifact(source_name).ok());
  EXPECT_EQ(*history.FindArtifact(source_name), history.graph().source());
  EXPECT_TRUE(history.FindArtifact("nope").status().IsNotFound());
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(HistoryIndexTest, IndexedLookupsMatchGraphScans) {
  History history;
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(history, pipeline, 0.5);
  const PipelineGraph& graph = history.graph();

  for (NodeId v = 0; v < graph.num_artifacts(); ++v) {
    const std::string& name = graph.artifact(v).name;
    ASSERT_TRUE(history.FindArtifact(name).ok()) << name;
    EXPECT_EQ(*history.FindArtifact(name), *graph.FindArtifact(name));
  }
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = graph.task(e);
    const std::string signature = graph.TaskSignature(e);
    if (task.type == TaskType::kLoad) {
      EXPECT_FALSE(history.HasTaskSignature(signature));
      continue;
    }
    EXPECT_TRUE(history.HasTaskSignature(signature)) << signature;
    const std::vector<EdgeId>& bucket =
        history.TasksForLogicalOp(task.logical_op);
    EXPECT_NE(std::find(bucket.begin(), bucket.end(), e), bucket.end());
  }
  EXPECT_FALSE(history.HasTaskSignature("not|a|signature"));
  EXPECT_TRUE(history.TasksForLogicalOp("NoSuchOp").empty());
}

TEST(HistoryIndexTest, BackwardRelevantEdgesMatchScanClosure) {
  History history;
  Pipeline p1 = *BuildPipeline("p1", "skl.StandardScaler");
  Pipeline p2 = *BuildPipeline("p2", "tfl.StandardScaler");
  RecordIntoHistory(history, p1, 0.5);
  RecordIntoHistory(history, p2, 0.25);

  // Every single-node seed and the all-nodes seed agree with the scan,
  // and the output is ascending (splice-order determinism).
  std::vector<NodeId> all;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    all.push_back(v);
    const std::vector<EdgeId> indexed =
        history.CollectBackwardRelevantEdges({v});
    EXPECT_EQ(indexed, ScanRelevantEdges(history, {v})) << "node " << v;
    EXPECT_TRUE(std::is_sorted(indexed.begin(), indexed.end()));
  }
  EXPECT_EQ(history.CollectBackwardRelevantEdges(all),
            ScanRelevantEdges(history, all));

  // Still equal after edge removals (dead edges must not resurface).
  NodeId state = kInvalidNode;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    if (history.graph().artifact(v).kind == ArtifactKind::kOpState) {
      state = v;
    }
  }
  ASSERT_NE(state, kInvalidNode);
  ASSERT_TRUE(history.MarkMaterialized(state).ok());
  ASSERT_TRUE(history.EvictMaterialized(state).ok());
  EXPECT_EQ(history.CollectBackwardRelevantEdges(all),
            ScanRelevantEdges(history, all));
}

TEST(HistoryIndexTest, RandomizedMutationsKeepIndexConsistent) {
  const Verifier verifier;
  for (uint64_t seed : {7u, 19u, 83u}) {
    std::mt19937_64 rng(seed);
    History history;
    std::vector<NodeId> nodes;  // non-source artifacts, by creation order
    int name_counter = 0;
    const char* ops[] = {"OpA", "OpB", "OpC"};

    auto random_node = [&]() {
      return nodes[rng() % nodes.size()];
    };

    for (int step = 0; step < 300; ++step) {
      const uint64_t action = rng() % 10;
      if (action < 3 || nodes.empty()) {
        // New artifact (occasionally a raw source).
        const bool raw = rng() % 8 == 0;
        const NodeId v = history.Observe(MakeArtifact(
            "art" + std::to_string(name_counter++),
            raw ? ArtifactKind::kRaw : ArtifactKind::kData,
            static_cast<int64_t>(64 + rng() % 4096)));
        if (raw) {
          history.RegisterSourceData(v).ValueOrDie();
        }
        nodes.push_back(v);
      } else if (action < 5) {
        // New derivation: tails from existing nodes, a fresh head keeps
        // the graph acyclic by construction.
        std::vector<NodeId> tails = {random_node()};
        if (rng() % 2 == 0) {
          tails.push_back(random_node());
        }
        std::sort(tails.begin(), tails.end());
        tails.erase(std::unique(tails.begin(), tails.end()), tails.end());
        const NodeId head = history.Observe(MakeArtifact(
            "art" + std::to_string(name_counter++), ArtifactKind::kData,
            256));
        const TaskInfo task =
            MakeTask(ops[rng() % 3], TaskType::kTransform,
                     "synthetic.Impl" + std::to_string(rng() % 2));
        history.ObserveTask(task, tails, {head},
                            static_cast<double>(rng() % 5)).ValueOrDie();
        nodes.push_back(head);
      } else if (action < 6) {
        (void)history.MarkMaterialized(random_node());
      } else if (action < 7) {
        (void)history.EvictMaterialized(random_node());  // may fail: fine
      } else if (action < 9) {
        history.RecordAccess(random_node(), static_cast<double>(step));
        history.RecordComputeSeconds(random_node(),
                                     static_cast<double>(rng() % 7));
      } else if (history.num_artifacts() > 12) {
        History::CompactionOptions copts;
        copts.max_nodes = history.num_artifacts() / 2;
        copts.retain_fraction = 0.75;
        ASSERT_TRUE(
            history.Compact(copts, static_cast<double>(step)).ok());
        // Node ids were reassigned: rebuild the handle list.
        nodes.clear();
        for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
          nodes.push_back(v);
        }
      }
      if (step % 25 == 0) {
        const AnalysisReport report = verifier.CheckHistoryIndex(history);
        ASSERT_TRUE(report.ok())
            << "seed " << seed << " step " << step << ": "
            << report.ToString();
      }
    }
    const AnalysisReport report = verifier.CheckHistoryIndex(history);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.ToString();
    // MaterializedArtifacts (served from the index) agrees with the flags.
    std::vector<NodeId> expected;
    for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
      if (history.record(v).materialized && !history.IsSourceData(v)) {
        expected.push_back(v);
      }
    }
    EXPECT_EQ(history.MaterializedArtifacts(), expected);
  }
}

TEST(HistoryIndexTest, SerializationRoundTripRebuildsIndex) {
  History history;
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(history, pipeline, 0.5);
  NodeId state = kInvalidNode;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    if (history.graph().artifact(v).kind == ArtifactKind::kOpState) {
      state = v;
    }
  }
  ASSERT_NE(state, kInvalidNode);
  ASSERT_TRUE(history.MarkMaterialized(state).ok());

  const Result<std::string> bytes = SerializeHistory(history);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<History> restored = DeserializeHistory(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(*restored);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(restored->MaterializedArtifacts().size(), 1u);
}

// ---------------------------------------------------------------------------
// Verifier::CheckHistoryIndex corruption detection (the graph() backdoor
// mirrors the analysis corruption fixtures).

TEST(VerifierIndexTest, GraphBackdoorArtifactDesyncsIndex) {
  History history;
  history.Observe(MakeArtifact("a", ArtifactKind::kData, 64));
  ArtifactInfo rogue = MakeArtifact("rogue", ArtifactKind::kData, 64);
  history.graph().AddArtifact(rogue).ValueOrDie();
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.HasCheck("index.artifact-missing")) << report.ToString();
  EXPECT_TRUE(report.HasCheck("index.artifact-count"));
}

TEST(VerifierIndexTest, RecordsShorterThanGraphDetected) {
  // A node slipped into the graph behind the History mutators (the
  // signature of an unsynchronized writer racing readers) leaves the
  // statistics-record vector short. The verifier must flag the gap
  // explicitly instead of silently clamping the materialized sweep.
  History history;
  history.Observe(MakeArtifact("a", ArtifactKind::kData, 64));
  const Verifier verifier;
  EXPECT_FALSE(
      verifier.CheckHistoryIndex(history).HasCheck("index.records-short"));
  ArtifactInfo rogue = MakeArtifact("rogue", ArtifactKind::kData, 64);
  history.graph().AddArtifact(rogue).ValueOrDie();
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.HasCheck("index.records-short")) << report.ToString();
}

TEST(VerifierIndexTest, GraphBackdoorTaskDesyncsIndex) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 64));
  const NodeId b = history.Observe(MakeArtifact("b", ArtifactKind::kData, 64));
  history.graph()
      .AddTask(MakeTask("Op", TaskType::kTransform, "skl.Op"), {a}, {b})
      .ValueOrDie();
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.HasCheck("index.task-missing")) << report.ToString();
  EXPECT_TRUE(report.HasCheck("index.task-count"));
}

TEST(VerifierIndexTest, MaterializedFlagDriftDetected) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 64));
  history.record(a).materialized = true;  // behind the index's back
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.HasCheck("index.materialized-drift"))
      << report.ToString();
}

TEST(VerifierIndexTest, VerifyHistoryIncludesIndexChecks) {
  History history;
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(history, pipeline, 0.5);
  const Verifier verifier;
  EXPECT_TRUE(verifier.VerifyHistory(history).ok());
  ArtifactInfo rogue = MakeArtifact("feedfacefeedface", ArtifactKind::kData,
                                    64);
  history.graph().AddArtifact(rogue).ValueOrDie();
  const AnalysisReport report = verifier.VerifyHistory(history);
  EXPECT_TRUE(report.HasCheck("index.artifact-missing")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Pareto compaction.

TEST(HistoryCompactionTest, NoOpWhileUnderTheLimit) {
  History history;
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(history, pipeline, 0.5);
  const int32_t before = history.num_artifacts();
  History::CompactionOptions copts;
  copts.max_nodes = before + 10;
  const auto stats = history.Compact(copts, 100.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nodes_dropped, 0);
  EXPECT_EQ(history.num_artifacts(), before);
  History::CompactionOptions disabled;  // max_nodes = 0
  EXPECT_EQ(history.Compact(disabled, 100.0)->nodes_dropped, 0);
}

TEST(HistoryCompactionTest, ProtectsSourcesAndMaterializedArtifacts) {
  History history;
  const NodeId raw =
      history.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 4096));
  history.RegisterSourceData(raw).ValueOrDie();
  const NodeId pinned =
      history.Observe(MakeArtifact("pinned", ArtifactKind::kOpState, 64));
  history.ObserveTask(MakeTask("P", TaskType::kFit, "skl.P"), {raw},
                      {pinned}, 1.0)
      .ValueOrDie();
  ASSERT_TRUE(history.MarkMaterialized(pinned).ok());
  for (int i = 0; i < 30; ++i) {
    const NodeId v = history.Observe(MakeArtifact(
        "filler" + std::to_string(i), ArtifactKind::kData, 128));
    history.ObserveTask(MakeTask("F", TaskType::kTransform, "skl.F"), {raw},
                        {v}, 0.1)
        .ValueOrDie();
  }

  History::CompactionOptions copts;
  copts.max_nodes = 8;
  copts.retain_fraction = 0.75;
  const auto stats = history.Compact(copts, 50.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nodes_before, 32);
  EXPECT_GT(stats->nodes_dropped, 0);
  EXPECT_EQ(stats->nodes_before - stats->nodes_dropped, stats->nodes_after);
  EXPECT_LE(history.num_artifacts(), 8);
  // The protected nodes survived, with statistics and materialization.
  ASSERT_TRUE(history.FindArtifact("raw").ok());
  ASSERT_TRUE(history.FindArtifact("pinned").ok());
  const NodeId new_pinned = *history.FindArtifact("pinned");
  EXPECT_TRUE(history.IsMaterialized(new_pinned));
  // The pinned artifact's producing derivation survived with it.
  EXPECT_EQ(history.TasksForLogicalOp("P").size(), 1u);
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistoryIndex(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(HistoryCompactionTest, ProtectNamesSurviveUnconditionally) {
  // The batch path pins the merged augmentation's artifact names while a
  // sweep is in flight: never-accessed, cheap artifacts that compaction
  // would otherwise drop first must survive when listed in protect_names.
  History history;
  const NodeId raw =
      history.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 4096));
  history.RegisterSourceData(raw).ValueOrDie();
  // Each filler gets a distinct config so its lineage (and thus its
  // canonical name) is unique; names follow the lineage-hash convention
  // so the verifier's name-closure check holds post-compaction.
  std::vector<std::string> filler_names;
  for (int i = 0; i < 40; ++i) {
    TaskInfo task = MakeTask("F", TaskType::kTransform, "skl.F");
    task.config.SetInt("variant", i);
    filler_names.push_back(TaskOutputNames(task, {"raw"}, 1)[0]);
    const NodeId v = history.Observe(
        MakeArtifact(filler_names.back(), ArtifactKind::kData, 128));
    history.ObserveTask(std::move(task), {raw}, {v}, 0.1).ValueOrDie();
  }
  const std::set<std::string> pinned = {filler_names[3], filler_names[17],
                                        filler_names[38]};

  History::CompactionOptions copts;
  copts.max_nodes = 10;
  copts.retain_fraction = 0.75;
  copts.protect_names = &pinned;
  const auto stats = history.Compact(copts, 50.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->nodes_dropped, 0);
  for (const std::string& name : pinned) {
    EXPECT_TRUE(history.FindArtifact(name).ok()) << name;
  }
  const Verifier verifier;
  const AnalysisReport report = verifier.VerifyHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Without protection the same artifacts are fair game: re-running the
  // compaction after dropping the pin set may evict them.
  History::CompactionOptions unprotected;
  unprotected.max_nodes = 4;
  unprotected.retain_fraction = 0.5;
  ASSERT_TRUE(history.Compact(unprotected, 60.0).ok());
  EXPECT_LE(history.num_artifacts(), 4);
}

TEST(HistoryCompactionTest, KeepsPerCriterionParetoAnchors) {
  History history;
  const NodeId raw =
      history.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 4096));
  history.RegisterSourceData(raw).ValueOrDie();
  auto derive = [&](const std::string& name) {
    const NodeId v =
        history.Observe(MakeArtifact(name, ArtifactKind::kData, 128));
    history.ObserveTask(MakeTask("D", TaskType::kTransform, "skl." + name),
                        {raw}, {v}, 0.1)
        .ValueOrDie();
    return v;
  };
  const NodeId hot = derive("hot");  // anchor: reuse count
  for (int i = 0; i < 50; ++i) {
    history.RecordAccess(hot, 1.0);
  }
  const NodeId costly = derive("costly");  // anchor: compute seconds
  history.RecordComputeSeconds(costly, 500.0);
  const NodeId recent = derive("recent");  // anchor: recency
  history.RecordAccess(recent, 99.0);
  for (int i = 0; i < 40; ++i) {
    derive("cold" + std::to_string(i));  // never accessed, cheap
  }

  History::CompactionOptions copts;
  copts.max_nodes = 20;
  copts.retain_fraction = 0.75;
  ASSERT_TRUE(history.Compact(copts, 100.0).ok());
  // Every per-criterion extreme point survives compaction.
  EXPECT_TRUE(history.FindArtifact("hot").ok());
  EXPECT_TRUE(history.FindArtifact("costly").ok());
  EXPECT_TRUE(history.FindArtifact("recent").ok());
  EXPECT_LE(history.num_artifacts(), 15);  // 20 * 0.75
}

TEST(HistoryCompactionTest, CompactedHistoryVerifiesClean) {
  History history;
  Pipeline p1 = *BuildPipeline("p1", "skl.StandardScaler");
  Pipeline p2 = *BuildPipeline("p2", "tfl.StandardScaler");
  RecordIntoHistory(history, p1, 0.5);
  RecordIntoHistory(history, p2, 0.25);
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    history.RecordAccess(v, static_cast<double>(v));
    if (history.graph().artifact(v).kind == ArtifactKind::kOpState) {
      ASSERT_TRUE(history.MarkMaterialized(v).ok());
    }
  }
  History::CompactionOptions copts;
  copts.max_nodes = history.num_artifacts() - 2;
  copts.retain_fraction = 0.8;
  const auto stats = history.Compact(copts, 100.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->nodes_dropped, 0);
  // The full invariant battery (graph, name closure, statistics, index,
  // serialization round-trip) holds on the compacted history.
  const Verifier verifier;
  const AnalysisReport report = verifier.VerifyHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(HistoryCompactionTest, PlanNoWorseThanPipelineAsWritten) {
  Dictionary dictionary =
      Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  CostEstimator estimator;
  Augmenter augmenter(&dictionary, &estimator);
  History history;
  Pipeline p1 = *BuildPipeline("p1", "skl.StandardScaler");
  Pipeline p2 = *BuildPipeline("p2", "tfl.StandardScaler");
  RecordIntoHistory(history, p1, 0.5);
  RecordIntoHistory(history, p2, 0.25);
  History::CompactionOptions copts;
  copts.max_nodes = 6;
  copts.retain_fraction = 0.5;
  ASSERT_TRUE(history.Compact(copts, 10.0).ok());

  // A heavily compacted history can lose splice opportunities, but the
  // optimum over the augmentation is still bounded by the cost of the
  // pipeline exactly as written (the pipeline is a subhypergraph of A).
  Augmenter::Options options;
  auto aug = augmenter.Augment(p1, history, options);
  ASSERT_TRUE(aug.ok()) << aug.status();
  std::map<std::string, double> weight_by_signature;
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    weight_by_signature[aug->graph.TaskSignature(e)] =
        aug->edge_weight[static_cast<size_t>(e)];
  }
  double as_written = 0.0;
  for (EdgeId e : p1.graph.hypergraph().LiveEdges()) {
    const auto it = weight_by_signature.find(p1.graph.TaskSignature(e));
    ASSERT_NE(it, weight_by_signature.end());
    as_written += it->second;
  }
  PlanGenerator generator;
  auto plan = generator.Optimize(*aug, PlanGenerator::Options());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LE(plan->cost, as_written + 1e-9);
}

// ---------------------------------------------------------------------------
// Indexed vs scan augmentation differential.

struct AugFingerprint {
  std::map<std::string, std::pair<double, double>> edges;  // sig -> (w, s)
  std::set<std::string> new_tasks;
  std::vector<std::string> targets;
};

AugFingerprint Fingerprint(const Augmentation& aug) {
  AugFingerprint fp;
  for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
    fp.edges[aug.graph.TaskSignature(e)] = {
        aug.edge_weight[static_cast<size_t>(e)],
        aug.edge_seconds[static_cast<size_t>(e)]};
  }
  for (EdgeId e : aug.new_tasks) {
    fp.new_tasks.insert(aug.graph.TaskSignature(e));
  }
  for (NodeId t : aug.targets) {
    fp.targets.push_back(aug.graph.artifact(t).name);
  }
  return fp;
}

class AugmenterIndexDifferentialTest : public ::testing::Test {
 protected:
  AugmenterIndexDifferentialTest()
      : dictionary_(Dictionary::FromRegistry(ml::OperatorRegistry::Global())),
        augmenter_(&dictionary_, &estimator_) {}

  // Warm history: two equivalent pipeline variants plus one materialized
  // intermediate, so all three augmentation mechanisms (splice, load
  // edges, dictionary alternatives) are exercised.
  void WarmHistory() {
    Pipeline p1 = *BuildPipeline("p1", "skl.StandardScaler");
    Pipeline p2 = *BuildPipeline("p2", "tfl.StandardScaler");
    RecordIntoHistory(history_, p1, 0.5);
    RecordIntoHistory(history_, p2, 0.25);
    for (NodeId v = 1; v < history_.graph().num_artifacts(); ++v) {
      if (history_.graph().artifact(v).kind == ArtifactKind::kOpState) {
        ASSERT_TRUE(history_.MarkMaterialized(v).ok());
        return;
      }
    }
  }

  Dictionary dictionary_;
  CostEstimator estimator_;
  Augmenter augmenter_;
  History history_;
};

TEST_F(AugmenterIndexDifferentialTest, IndexedAndScanAugmentationsIdentical) {
  WarmHistory();
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");

  Augmenter::Options indexed;
  indexed.use_index = true;
  indexed.validate_index = true;  // internal cross-check on every probe
  Augmenter::Options scan;
  scan.use_index = false;

  auto aug_indexed = augmenter_.Augment(pipeline, history_, indexed);
  ASSERT_TRUE(aug_indexed.ok()) << aug_indexed.status();
  auto aug_scan = augmenter_.Augment(pipeline, history_, scan);
  ASSERT_TRUE(aug_scan.ok()) << aug_scan.status();

  const AugFingerprint fi = Fingerprint(*aug_indexed);
  const AugFingerprint fs = Fingerprint(*aug_scan);
  EXPECT_EQ(fi.edges, fs.edges);
  EXPECT_EQ(fi.new_tasks, fs.new_tasks);
  EXPECT_EQ(fi.targets, fs.targets);

  // Identical augmentations => cost-identical optimal plans.
  PlanGenerator generator;
  auto plan_indexed = generator.Optimize(*aug_indexed,
                                         PlanGenerator::Options());
  auto plan_scan = generator.Optimize(*aug_scan, PlanGenerator::Options());
  ASSERT_TRUE(plan_indexed.ok()) << plan_indexed.status();
  ASSERT_TRUE(plan_scan.ok()) << plan_scan.status();
  EXPECT_NEAR(plan_indexed->cost, plan_scan->cost, 1e-12);
}

TEST_F(AugmenterIndexDifferentialTest, RetrievalAugmentationsIdentical) {
  WarmHistory();
  // Request every non-raw artifact the history knows, one at a time.
  std::vector<std::string> names;
  for (NodeId v = 1; v < history_.graph().num_artifacts(); ++v) {
    if (!history_.IsSourceData(v)) {
      names.push_back(history_.graph().artifact(v).name);
    }
  }
  ASSERT_FALSE(names.empty());
  Augmenter::Options indexed;
  indexed.use_index = true;
  indexed.validate_index = true;
  Augmenter::Options scan;
  scan.use_index = false;
  for (const std::string& name : names) {
    auto aug_indexed =
        augmenter_.AugmentForRetrieval(history_, {name}, indexed);
    auto aug_scan = augmenter_.AugmentForRetrieval(history_, {name}, scan);
    ASSERT_TRUE(aug_indexed.ok()) << name << ": " << aug_indexed.status();
    ASSERT_TRUE(aug_scan.ok()) << name << ": " << aug_scan.status();
    const AugFingerprint fi = Fingerprint(*aug_indexed);
    const AugFingerprint fs = Fingerprint(*aug_scan);
    EXPECT_EQ(fi.edges, fs.edges) << name;
    EXPECT_EQ(fi.new_tasks, fs.new_tasks) << name;
    EXPECT_EQ(fi.targets, fs.targets) << name;
  }
  // Unknown names fail identically on both paths.
  EXPECT_TRUE(augmenter_.AugmentForRetrieval(history_, {"missing"}, indexed)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(augmenter_.AugmentForRetrieval(history_, {"missing"}, scan)
                  .status()
                  .IsNotFound());
}

TEST_F(AugmenterIndexDifferentialTest, MonitorCountsHitsAndMisses) {
  Monitor monitor;
  augmenter_.set_monitor(&monitor);
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;

  // Cold history: every equivalence probe misses.
  ASSERT_TRUE(augmenter_.Augment(pipeline, history_, options).ok());
  EXPECT_EQ(monitor.num_index_hits(), 0);
  EXPECT_GT(monitor.num_index_misses(), 0);

  // Warm history: the pipeline's artifacts and tasks are all known.
  const int64_t misses_cold = monitor.num_index_misses();
  RecordIntoHistory(history_, pipeline, 0.5);
  ASSERT_TRUE(augmenter_.Augment(pipeline, history_, options).ok());
  EXPECT_GT(monitor.num_index_hits(), 0);
  // The scan path must not touch the counters.
  const int64_t hits_before = monitor.num_index_hits();
  const int64_t misses_before = monitor.num_index_misses();
  Augmenter::Options scan;
  scan.use_index = false;
  ASSERT_TRUE(augmenter_.Augment(pipeline, history_, scan).ok());
  EXPECT_EQ(monitor.num_index_hits(), hits_before);
  EXPECT_EQ(monitor.num_index_misses(), misses_before);
  EXPECT_GE(misses_cold, 1);
}

// ---------------------------------------------------------------------------
// End-to-end: the indexed and scan systems execute byte-identical payloads
// and report cost-identical plans on fault-free runs.

TEST(SystemIndexDifferentialTest, ExecutedPayloadsByteIdentical) {
  auto make_system = [](bool use_index) {
    HyppoSystem::Options options;
    options.runtime.simulate = false;
    options.runtime.parallelism = 1;
    options.runtime.verify_plans = true;
    options.method.augment.use_index = use_index;
    options.method.augment.validate_index = use_index;
    auto system = std::make_unique<HyppoSystem>(options);
    system->RegisterDataset("idx-unit",
                            *workload::GenerateHiggs(2000, 8, 5));
    return system;
  };
  auto indexed = make_system(true);
  auto scan = make_system(false);

  for (const char* impl : {"skl.StandardScaler", "tfl.StandardScaler",
                           "skl.StandardScaler"}) {
    Pipeline pipeline = *BuildPipeline(std::string("p-") + impl, impl);
    auto report_indexed = indexed->RunPipeline(pipeline);
    auto report_scan = scan->RunPipeline(pipeline);
    ASSERT_TRUE(report_indexed.ok()) << report_indexed.status();
    ASSERT_TRUE(report_scan.ok()) << report_scan.status();
    EXPECT_NEAR(report_indexed->plan.cost, report_scan->plan.cost, 1e-9)
        << impl;
    EXPECT_EQ(report_indexed->tasks_executed, report_scan->tasks_executed);
    ASSERT_EQ(report_indexed->target_payloads.size(),
              report_scan->target_payloads.size());
    for (const auto& [name, payload] : report_indexed->target_payloads) {
      const auto it = report_scan->target_payloads.find(name);
      ASSERT_NE(it, report_scan->target_payloads.end()) << name;
      const auto bytes_indexed = storage::SerializePayload(payload);
      const auto bytes_scan = storage::SerializePayload(it->second);
      ASSERT_TRUE(bytes_indexed.ok());
      ASSERT_TRUE(bytes_scan.ok());
      EXPECT_EQ(*bytes_indexed, *bytes_scan) << name;
    }
  }
  // The indexed system answered probes from the index.
  EXPECT_GT(indexed->runtime().monitor().num_index_hits(), 0);
  EXPECT_EQ(scan->runtime().monitor().num_index_hits(), 0);
}

// Runtime-level compaction trigger: bounded history, monitor counter.
TEST(SystemIndexDifferentialTest, RuntimeCompactsHistoryAtTheBound) {
  HyppoSystem::Options options;
  options.runtime.simulate = false;
  options.runtime.parallelism = 1;
  options.runtime.history_max_artifacts = 10;
  options.runtime.history_retain_fraction = 0.75;
  HyppoSystem system(options);
  system.RegisterDataset("idx-unit", *workload::GenerateHiggs(2000, 8, 5));

  // Distinct max_depth configs derive distinct downstream artifacts, so
  // the history keeps growing past the bound across runs.
  for (int depth : {3, 5, 7, 9}) {
    Pipeline pipeline = *BuildPipeline("c" + std::to_string(depth),
                                       "skl.StandardScaler", depth);
    auto report = system.RunPipeline(pipeline);
    ASSERT_TRUE(report.ok()) << report.status();
  }
  EXPECT_LE(system.runtime().history().num_artifacts(), 10);
  EXPECT_GT(system.runtime().monitor().num_history_compacted(), 0);
  const Verifier verifier;
  const AnalysisReport report =
      verifier.CheckHistoryIndex(system.runtime().history());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace hyppo::core
