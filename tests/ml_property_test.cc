#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "ml/linalg.h"
#include "ml/metrics.h"
#include "ml/registry.h"

namespace hyppo::ml {
namespace {

DatasetPtr RandomData(int64_t rows, int64_t cols, uint64_t seed,
                      bool regression = false) {
  Rng rng(seed);
  auto data = std::make_shared<Dataset>(rows, cols);
  std::vector<double> target(static_cast<size_t>(rows));
  std::vector<double> w(static_cast<size_t>(cols));
  for (auto& v : w) {
    v = rng.Gaussian();
  }
  for (int64_t r = 0; r < rows; ++r) {
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double value = 3.0 * rng.Gaussian() + static_cast<double>(c);
      data->at(r, c) = value;
      dot += w[static_cast<size_t>(c)] * value;
    }
    target[static_cast<size_t>(r)] =
        regression ? dot + 0.05 * rng.Gaussian() : (dot > 0 ? 1.0 : 0.0);
  }
  data->set_target(std::move(target));
  return data;
}

Result<TaskOutputs> RunOp(const std::string& impl, MlTask task,
                        const TaskInputs& inputs,
                        const Config& config = Config()) {
  HYPPO_ASSIGN_OR_RETURN(const PhysicalOperator* op,
                         OperatorRegistry::Global().Get(impl));
  return op->Execute(task, inputs, config);
}

Result<Dataset> FitTransformSelf(const std::string& impl,
                                 const DatasetPtr& data,
                                 const Config& config = Config()) {
  TaskInputs fit_in;
  fit_in.datasets.push_back(data);
  HYPPO_ASSIGN_OR_RETURN(TaskOutputs fit, RunOp(impl, MlTask::kFit, fit_in,
                                              config));
  TaskInputs tr_in;
  tr_in.states = fit.states;
  tr_in.datasets.push_back(data);
  HYPPO_ASSIGN_OR_RETURN(TaskOutputs out,
                         RunOp(impl, MlTask::kTransform, tr_in, config));
  return *out.datasets[0];
}

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, StandardScalerCentersAndScalesTrainingData) {
  DatasetPtr data = RandomData(400, 5, GetParam());
  auto scaled = FitTransformSelf("skl.StandardScaler", data);
  ASSERT_TRUE(scaled.ok());
  for (int64_t c = 0; c < scaled->cols(); ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (int64_t r = 0; r < scaled->rows(); ++r) {
      sum += scaled->at(r, c);
      sq += scaled->at(r, c) * scaled->at(r, c);
    }
    const double n = static_cast<double>(scaled->rows());
    EXPECT_NEAR(sum / n, 0.0, 1e-9);
    EXPECT_NEAR(sq / n, 1.0, 1e-9);
  }
}

TEST_P(SeedSweep, MinMaxScalerMapsTrainingDataToUnitRange) {
  DatasetPtr data = RandomData(300, 4, GetParam());
  auto scaled = FitTransformSelf("tfl.MinMaxScaler", data);
  ASSERT_TRUE(scaled.ok());
  for (int64_t c = 0; c < scaled->cols(); ++c) {
    double mn = 1e300;
    double mx = -1e300;
    for (int64_t r = 0; r < scaled->rows(); ++r) {
      mn = std::min(mn, scaled->at(r, c));
      mx = std::max(mx, scaled->at(r, c));
    }
    EXPECT_NEAR(mn, 0.0, 1e-12);
    EXPECT_NEAR(mx, 1.0, 1e-12);
  }
}

TEST_P(SeedSweep, RobustScalerZerosTheMedian) {
  DatasetPtr data = RandomData(301, 3, GetParam());
  auto scaled = FitTransformSelf("skl.RobustScaler", data);
  ASSERT_TRUE(scaled.ok());
  for (int64_t c = 0; c < scaled->cols(); ++c) {
    std::vector<double> col(scaled->col_data(c),
                            scaled->col_data(c) + scaled->rows());
    std::nth_element(col.begin(), col.begin() + col.size() / 2, col.end());
    EXPECT_NEAR(col[col.size() / 2], 0.0, 1e-9);
  }
}

TEST_P(SeedSweep, ImputerLeavesNoMissingValues) {
  Rng rng(GetParam());
  auto raw = std::make_shared<Dataset>(200, 4);
  for (int64_t r = 0; r < 200; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      raw->at(r, c) = rng.Bernoulli(0.2) ? std::nan("") : rng.Gaussian();
    }
  }
  raw->set_target(std::vector<double>(200, 0.0));
  for (const char* impl : {"skl.SimpleImputer", "tfl.SimpleImputer"}) {
    for (const char* strategy : {"mean", "median"}) {
      Config config;
      config.Set("strategy", strategy);
      auto filled = FitTransformSelf(impl, raw, config);
      ASSERT_TRUE(filled.ok()) << filled.status();
      for (int64_t r = 0; r < filled->rows(); ++r) {
        for (int64_t c = 0; c < filled->cols(); ++c) {
          EXPECT_FALSE(std::isnan(filled->at(r, c)))
              << impl << " " << strategy;
        }
      }
    }
  }
}

TEST_P(SeedSweep, PcaComponentsAreOrthonormal) {
  DatasetPtr data = RandomData(300, 6, GetParam());
  TaskInputs fit_in;
  fit_in.datasets.push_back(data);
  Config config;
  config.SetInt("n_components", 3);
  auto fit = RunOp("skl.PCA", MlTask::kFit, fit_in, config);
  ASSERT_TRUE(fit.ok());
  const auto* state =
      dynamic_cast<const VectorState*>(fit->states[0].get());
  ASSERT_NE(state, nullptr);
  const std::vector<double>& comp = state->vec("components");
  const int64_t d = 6;
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      const double dot = Dot(comp.data() + i * d, comp.data() + j * d, d);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8) << i << "," << j;
    }
  }
}

TEST_P(SeedSweep, PcaProjectionsAreDecorrelated) {
  DatasetPtr data = RandomData(500, 5, GetParam());
  Config config;
  config.SetInt("n_components", 3);
  auto projected = FitTransformSelf("skl.PCA", data, config);
  ASSERT_TRUE(projected.ok());
  // Off-diagonal covariance of the projections vanishes.
  const int64_t n = projected->rows();
  for (int64_t i = 0; i < projected->cols(); ++i) {
    for (int64_t j = i + 1; j < projected->cols(); ++j) {
      double mi = 0.0;
      double mj = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        mi += projected->at(r, i);
        mj += projected->at(r, j);
      }
      mi /= static_cast<double>(n);
      mj /= static_cast<double>(n);
      double cov = 0.0;
      double vi = 0.0;
      double vj = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        cov += (projected->at(r, i) - mi) * (projected->at(r, j) - mj);
        vi += (projected->at(r, i) - mi) * (projected->at(r, i) - mi);
        vj += (projected->at(r, j) - mj) * (projected->at(r, j) - mj);
      }
      EXPECT_LT(std::fabs(cov) / std::sqrt(vi * vj), 1e-6);
    }
  }
}

TEST_P(SeedSweep, BoostingTrainingErrorDecreasesWithStages) {
  DatasetPtr data = RandomData(500, 4, GetParam(), /*regression=*/true);
  double previous = 1e300;
  for (int64_t stages : {5, 20, 60}) {
    Config config;
    config.SetInt("n_estimators", stages);
    config.SetInt("max_depth", 3);
    TaskInputs fit_in;
    fit_in.datasets.push_back(data);
    auto fit = RunOp("lgb.GradientBoostingRegressor", MlTask::kFit, fit_in,
                   config);
    ASSERT_TRUE(fit.ok());
    TaskInputs pr_in;
    pr_in.states = fit->states;
    pr_in.datasets.push_back(data);
    auto pr = RunOp("lgb.GradientBoostingRegressor", MlTask::kPredict, pr_in,
                  config);
    ASSERT_TRUE(pr.ok());
    const double rmse = *Rmse(*pr->predictions[0], data->target());
    EXPECT_LT(rmse, previous + 1e-12) << stages << " stages";
    previous = rmse;
  }
}

TEST_P(SeedSweep, ForestIsDeterministicPerSeed) {
  DatasetPtr data = RandomData(300, 4, GetParam());
  auto predict_with_seed = [&](int64_t seed) {
    Config config;
    config.SetInt("n_estimators", 8);
    config.SetInt("seed", seed);
    TaskInputs fit_in;
    fit_in.datasets.push_back(data);
    auto fit = RunOp("skl.RandomForestClassifier", MlTask::kFit, fit_in,
                   config);
    fit.status().Abort("fit");
    TaskInputs pr_in;
    pr_in.states = fit->states;
    pr_in.datasets.push_back(data);
    auto pr = RunOp("skl.RandomForestClassifier", MlTask::kPredict, pr_in,
                  config);
    pr.status().Abort("predict");
    return *pr->predictions[0];
  };
  EXPECT_EQ(predict_with_seed(5), predict_with_seed(5));
  EXPECT_NE(predict_with_seed(5), predict_with_seed(6));
}

TEST_P(SeedSweep, KMeansPredictMatchesTransformArgmin) {
  DatasetPtr data = RandomData(250, 3, GetParam());
  Config config;
  config.SetInt("n_clusters", 4);
  config.SetInt("seed", 2);
  TaskInputs fit_in;
  fit_in.datasets.push_back(data);
  auto fit = RunOp("skl.KMeans", MlTask::kFit, fit_in, config);
  ASSERT_TRUE(fit.ok());
  TaskInputs in;
  in.states = fit->states;
  in.datasets.push_back(data);
  auto distances = RunOp("skl.KMeans", MlTask::kTransform, in, config);
  auto assignment = RunOp("skl.KMeans", MlTask::kPredict, in, config);
  ASSERT_TRUE(distances.ok() && assignment.ok());
  const Dataset& dist = *distances->datasets[0];
  const std::vector<double>& assign = *assignment->predictions[0];
  for (int64_t r = 0; r < dist.rows(); ++r) {
    int64_t argmin = 0;
    for (int64_t c = 1; c < dist.cols(); ++c) {
      if (dist.at(r, c) < dist.at(r, argmin)) {
        argmin = c;
      }
    }
    EXPECT_EQ(static_cast<int64_t>(assign[static_cast<size_t>(r)]), argmin);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Non-parameterized operator properties.

TEST(OperatorPropertyTest, NormalizerMakesUnitRows) {
  DatasetPtr data = RandomData(100, 5, 3);
  auto normalized = FitTransformSelf("skl.Normalizer", data);
  ASSERT_TRUE(normalized.ok());
  for (int64_t r = 0; r < normalized->rows(); ++r) {
    double sq = 0.0;
    for (int64_t c = 0; c < normalized->cols(); ++c) {
      sq += normalized->at(r, c) * normalized->at(r, c);
    }
    EXPECT_NEAR(std::sqrt(sq), 1.0, 1e-12);
  }
}

TEST(OperatorPropertyTest, BinarizerOutputsZeroOne) {
  DatasetPtr data = RandomData(100, 3, 4);
  Config config;
  config.SetDouble("threshold", 0.5);
  auto binary = FitTransformSelf("skl.Binarizer", data, config);
  ASSERT_TRUE(binary.ok());
  for (int64_t r = 0; r < binary->rows(); ++r) {
    for (int64_t c = 0; c < binary->cols(); ++c) {
      const double value = binary->at(r, c);
      EXPECT_TRUE(value == 0.0 || value == 1.0);
    }
  }
}

TEST(OperatorPropertyTest, VarianceThresholdDropsConstantColumns) {
  auto data = std::make_shared<Dataset>(50, 3);
  Rng rng(5);
  for (int64_t r = 0; r < 50; ++r) {
    data->at(r, 0) = rng.Gaussian();
    data->at(r, 1) = 7.0;  // constant
    data->at(r, 2) = rng.Gaussian();
  }
  data->set_target(std::vector<double>(50, 0.0));
  auto reduced = FitTransformSelf("skl.VarianceThreshold",
                                  DatasetPtr(data));
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->cols(), 2);
  EXPECT_EQ(reduced->column_names()[0], "f0");
  EXPECT_EQ(reduced->column_names()[1], "f2");
}

TEST(OperatorPropertyTest, PolynomialFeaturesComputesProducts) {
  auto data = std::make_shared<Dataset>(2, 2);
  data->at(0, 0) = 2.0;
  data->at(0, 1) = 3.0;
  data->at(1, 0) = -1.0;
  data->at(1, 1) = 4.0;
  Config config;
  config.SetInt("degree", 2);
  auto expanded =
      FitTransformSelf("skl.PolynomialFeatures", DatasetPtr(data), config);
  ASSERT_TRUE(expanded.ok());
  // columns: f0, f1, f0*f0, f0*f1, f1*f1.
  ASSERT_EQ(expanded->cols(), 5);
  EXPECT_DOUBLE_EQ(expanded->at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(expanded->at(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(expanded->at(0, 4), 9.0);
  EXPECT_DOUBLE_EQ(expanded->at(1, 3), -4.0);
  EXPECT_EQ(expanded->column_names()[3], "f0*f1");
}

TEST(OperatorPropertyTest, TaxiFeaturesHaversineSane) {
  std::vector<std::string> names = {"pickup_lat", "pickup_lon",
                                    "dropoff_lat", "dropoff_lon"};
  auto data =
      std::make_shared<Dataset>(Dataset::WithColumns(2, std::move(names)));
  // Row 0: identical points -> 0 km. Row 1: 1 degree of latitude ~111 km.
  data->at(0, 0) = 40.75;
  data->at(0, 1) = -73.97;
  data->at(0, 2) = 40.75;
  data->at(0, 3) = -73.97;
  data->at(1, 0) = 40.0;
  data->at(1, 1) = -74.0;
  data->at(1, 2) = 41.0;
  data->at(1, 3) = -74.0;
  data->set_target({1.0, 2.0});
  auto out = FitTransformSelf("skl.TaxiFeatures", DatasetPtr(data));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->cols(), 7);
  const int64_t haversine_col = 4;
  EXPECT_NEAR(out->at(0, haversine_col), 0.0, 1e-9);
  EXPECT_NEAR(out->at(1, haversine_col), 111.2, 1.0);
}

TEST(OperatorPropertyTest, LogTargetAppliesLog1p) {
  auto data = std::make_shared<Dataset>(3, 1);
  data->set_target({0.0, 99.0, 1e6});
  auto out = FitTransformSelf("skl.LogTarget", DatasetPtr(data));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->target()[0], 0.0);
  EXPECT_DOUBLE_EQ(out->target()[1], std::log1p(99.0));
  EXPECT_DOUBLE_EQ(out->target()[2], std::log1p(1e6));
}

TEST(OperatorPropertyTest, SplitPartitionsAllRowsExactlyOnce) {
  DatasetPtr data = RandomData(100, 2, 8);
  Config config;
  config.SetDouble("test_size", 0.3);
  TaskInputs in;
  in.datasets.push_back(data);
  auto out = RunOp("skl.TrainTestSplit", MlTask::kSplit, in, config);
  ASSERT_TRUE(out.ok());
  const Dataset& train = *out->datasets[0];
  const Dataset& test = *out->datasets[1];
  EXPECT_EQ(train.rows() + test.rows(), 100);
  // The multiset of target values is preserved (rows neither duplicated
  // nor dropped) — targets are distinct with probability 1 here.
  std::multiset<double> original(data->target().begin(),
                                 data->target().end());
  std::multiset<double> combined(train.target().begin(),
                                 train.target().end());
  combined.insert(test.target().begin(), test.target().end());
  EXPECT_EQ(original, combined);
}

TEST(OperatorPropertyTest, LinearModelsRecoverPlantedWeights) {
  // y = 2 x0 - 3 x1 + 1: LinearRegression recovers the coefficients.
  Rng rng(6);
  auto data = std::make_shared<Dataset>(200, 2);
  std::vector<double> target(200);
  for (int64_t r = 0; r < 200; ++r) {
    const double x0 = rng.Gaussian();
    const double x1 = rng.Gaussian();
    data->at(r, 0) = x0;
    data->at(r, 1) = x1;
    target[static_cast<size_t>(r)] = 2.0 * x0 - 3.0 * x1 + 1.0;
  }
  data->set_target(std::move(target));
  TaskInputs fit_in;
  fit_in.datasets.push_back(DatasetPtr(data));
  auto fit = RunOp("skl.LinearRegression", MlTask::kFit, fit_in);
  ASSERT_TRUE(fit.ok());
  const auto* state =
      dynamic_cast<const VectorState*>(fit->states[0].get());
  ASSERT_NE(state, nullptr);
  EXPECT_NEAR(state->vec("weights")[0], 2.0, 1e-6);
  EXPECT_NEAR(state->vec("weights")[1], -3.0, 1e-6);
  EXPECT_NEAR(state->scalar("intercept"), 1.0, 1e-6);
}

TEST(OperatorPropertyTest, LassoShrinksIrrelevantCoefficients) {
  // y depends only on x0; with enough L1, the x1 weight becomes 0.
  Rng rng(9);
  auto data = std::make_shared<Dataset>(300, 2);
  std::vector<double> target(300);
  for (int64_t r = 0; r < 300; ++r) {
    data->at(r, 0) = rng.Gaussian();
    data->at(r, 1) = rng.Gaussian();
    target[static_cast<size_t>(r)] = 1.5 * data->at(r, 0);
  }
  data->set_target(std::move(target));
  Config config;
  config.SetDouble("alpha", 0.5);
  TaskInputs fit_in;
  fit_in.datasets.push_back(DatasetPtr(data));
  auto fit = RunOp("skl.Lasso", MlTask::kFit, fit_in, config);
  ASSERT_TRUE(fit.ok());
  const auto* state =
      dynamic_cast<const VectorState*>(fit->states[0].get());
  ASSERT_NE(state, nullptr);
  EXPECT_NEAR(state->vec("weights")[1], 0.0, 1e-6);
  EXPECT_GT(state->vec("weights")[0], 0.5);
}

}  // namespace
}  // namespace hyppo::ml
