#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "analysis/diagnostic.h"
#include "analysis/json_diagnostics.h"
#include "analysis/static/static_analyzer.h"
#include "core/dictionary.h"
#include "core/hyppo.h"
#include "core/parser.h"
#include "core/pipeline_builder.h"
#include "ml/registry.h"

namespace hyppo::analysis {
namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::Pipeline;
using core::PipelineBuilder;
using core::PipelineGraph;
using core::TaskInfo;
using core::TaskType;

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t rows, int64_t cols) {
  ArtifactInfo info;
  info.name = name;
  info.kind = kind;
  info.rows = rows;
  info.cols = cols;
  info.size_bytes = rows * (cols + 1) * 8;
  return info;
}

TaskInfo MakeTask(const std::string& logical_op, TaskType type,
                  const std::string& impl, int source_line) {
  TaskInfo task;
  task.logical_op = logical_op;
  task.type = type;
  task.impl = impl;
  task.source_line = source_line;
  return task;
}

const Diagnostic* FindCheck(const AnalysisReport& report,
                            const std::string& check) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.check == check) {
      return &d;
    }
  }
  return nullptr;
}

// Registry probe: a fit/transform estimator whose tolerance/determinism
// contracts are injectable, for seeding catalog defects.
class ProbeOp final : public ml::Estimator {
 public:
  ProbeOp(std::string logical_op, std::string framework, ml::Tolerance tol,
          ml::Determinism det)
      : Estimator(std::move(logical_op), std::move(framework),
                  /*transforms=*/true, /*predicts=*/false) {
    set_tolerance(tol);
    set_determinism(det);
  }

 protected:
  Result<ml::OpStatePtr> DoFit(const ml::Dataset& /*data*/,
                               const ml::Config& /*config*/) const override {
    return Status::Internal("probe operator is not executable");
  }
};

// ---------------------------------------------------------------------------
// Pass 1: shape & schema inference.

// Seeded defect: evaluate with a missing dataset input (bad arity).
TEST(StaticShapeTest, BadArityIsErrorWithSourceLocation) {
  PipelineGraph g;
  const NodeId preds =
      *g.AddArtifact(MakeArtifact("p", ArtifactKind::kPredictions, 100, 1));
  const NodeId value =
      *g.AddArtifact(MakeArtifact("v", ArtifactKind::kValue, 1, 1));
  ASSERT_TRUE(g.AddTask(MakeTask("Evaluator", TaskType::kEvaluate,
                                 "skl.Evaluator", /*source_line=*/4),
                        {preds}, {value})
                  .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckPipelineShapes(g);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCheck(report, "shape.bad-arity");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 4);
  EXPECT_EQ(d->entity, EntityKind::kEdge);
  EXPECT_NE(d->ToString().find("(line 4)"), std::string::npos);
}

// Seeded defect: a state fitted on 10 columns applied to 5-column data.
TEST(StaticShapeTest, DimensionMismatchIsErrorWithSourceLocation) {
  PipelineGraph g;
  const NodeId train =
      *g.AddArtifact(MakeArtifact("train", ArtifactKind::kTrain, 100, 10));
  const NodeId state =
      *g.AddArtifact(MakeArtifact("state", ArtifactKind::kOpState, 1, 10));
  const NodeId narrow =
      *g.AddArtifact(MakeArtifact("narrow", ArtifactKind::kTest, 50, 5));
  const NodeId preds =
      *g.AddArtifact(MakeArtifact("p", ArtifactKind::kPredictions, 50, 1));
  ASSERT_TRUE(g.AddTask(MakeTask("DecisionTreeClassifier", TaskType::kFit,
                                 "skl.DecisionTreeClassifier", 2),
                        {train}, {state})
                  .ok());
  ASSERT_TRUE(g.AddTask(MakeTask("DecisionTreeClassifier", TaskType::kPredict,
                                 "skl.DecisionTreeClassifier", 3),
                        {state, narrow}, {preds})
                  .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckPipelineShapes(g);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCheck(report, "shape.dim-mismatch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("10"), std::string::npos);
  EXPECT_NE(d->message.find("5"), std::string::npos);
}

// Split heads must be (train, test); transposing them is a kind error.
TEST(StaticShapeTest, KindMismatchOnSplitHeads) {
  PipelineGraph g;
  const NodeId data =
      *g.AddArtifact(MakeArtifact("d", ArtifactKind::kRaw, 100, 4));
  const NodeId a =
      *g.AddArtifact(MakeArtifact("a", ArtifactKind::kTest, 75, 4));
  const NodeId b =
      *g.AddArtifact(MakeArtifact("b", ArtifactKind::kTrain, 25, 4));
  ASSERT_TRUE(g.AddTask(MakeTask("TrainTestSplit", TaskType::kSplit,
                                 "skl.TrainTestSplit", 1),
                        {data}, {a, b})
                  .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckPipelineShapes(g);
  EXPECT_TRUE(FindCheck(report, "shape.kind-mismatch") != nullptr);
  EXPECT_FALSE(report.ok());
}

TEST(StaticShapeTest, SplitTestSizeOutsideUnitIntervalIsError) {
  PipelineGraph g;
  const NodeId data =
      *g.AddArtifact(MakeArtifact("d", ArtifactKind::kRaw, 100, 4));
  const NodeId tr =
      *g.AddArtifact(MakeArtifact("tr", ArtifactKind::kTrain, 75, 4));
  const NodeId te =
      *g.AddArtifact(MakeArtifact("te", ArtifactKind::kTest, 25, 4));
  TaskInfo task =
      MakeTask("TrainTestSplit", TaskType::kSplit, "skl.TrainTestSplit", 2);
  task.config.Set("test_size", "1.5");
  ASSERT_TRUE(g.AddTask(task, {data}, {tr, te}).ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckPipelineShapes(g);
  const Diagnostic* d = FindCheck(report, "shape.bad-config");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
}

// Evaluate comparing predictions against a differently-sized dataset.
TEST(StaticShapeTest, EvaluateRowMismatchIsError) {
  PipelineGraph g;
  const NodeId preds =
      *g.AddArtifact(MakeArtifact("p", ArtifactKind::kPredictions, 100, 1));
  const NodeId test =
      *g.AddArtifact(MakeArtifact("t", ArtifactKind::kTest, 40, 4));
  const NodeId value =
      *g.AddArtifact(MakeArtifact("v", ArtifactKind::kValue, 1, 1));
  ASSERT_TRUE(g.AddTask(MakeTask("Evaluator", TaskType::kEvaluate,
                                 "skl.Evaluator", 6),
                        {preds, test}, {value})
                  .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckPipelineShapes(g);
  const Diagnostic* d = FindCheck(report, "shape.dim-mismatch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 6);
}

// Every shape a PipelineBuilder can legally produce must pass: ensembles,
// transforms, predicts, evaluates.
TEST(StaticShapeTest, WellFormedBuilderPipelineIsClean) {
  PipelineBuilder b("clean");
  const NodeId data = *b.LoadDataset("unit", 600, 6);
  const auto split = *b.Split(data);
  const NodeId scaler =
      *b.Fit("StandardScaler", "skl.StandardScaler", split.first);
  const NodeId train_s = *b.Transform(scaler, split.first);
  const NodeId test_s = *b.Transform(scaler, split.second);
  const NodeId m1 =
      *b.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier", train_s);
  const NodeId m2 = *b.Fit("SGDRegressor", "skl.SGDRegressor", train_s);
  const NodeId ens = *b.FitEnsemble("VotingRegressor", "skl.VotingRegressor",
                                    {m1, m2}, kInvalidNode);
  const NodeId preds = *b.Predict(ens, test_s);
  ASSERT_TRUE(b.Evaluate(preds, test_s, "accuracy").ok());
  const Pipeline pipeline = *std::move(b).Build();
  const StaticAnalyzer analyzer;
  const AnalysisReport report =
      analyzer.CheckPipelineShapes(pipeline.graph);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// The DSL parser stamps statement lines, so a defect written in DSL
// surfaces with its source line end to end.
TEST(StaticShapeTest, DslDimensionMismatchCarriesSourceLine) {
  const char* code = R"(wide   = load("d10", rows=100, cols=10)
narrow = load("d5", rows=100, cols=5)
tr, te = sk.TrainTestSplit.split(wide)
sc     = sk.StandardScaler.fit(tr)
oops   = sc.transform(narrow)
)";
  const core::Dictionary dictionary =
      core::Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  const Result<Pipeline> pipeline =
      core::ParsePipeline(code, "located", dictionary);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  const StaticAnalyzer analyzer;
  const AnalysisReport report =
      analyzer.CheckPipelineShapes(pipeline->graph);
  const Diagnostic* d = FindCheck(report, "shape.dim-mismatch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 5);
}

// ---------------------------------------------------------------------------
// Pass 2: equivalence soundness audit.

// Seeded defect: two implementations of one logical operator declaring
// different tolerance classes — an inconsistent equivalence class.
TEST(StaticCatalogTest, InconsistentEquivalenceClassIsError) {
  ml::OperatorRegistry registry;
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "FakeScaler", "skl", ml::Tolerance::kExact,
                      ml::Determinism::kDeterministic))
                  .ok());
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "FakeScaler", "tfl", ml::Tolerance::kNumeric,
                      ml::Determinism::kDeterministic))
                  .ok());
  core::Dictionary dictionary;
  ASSERT_TRUE(
      dictionary.Register("FakeScaler", TaskType::kFit, "skl.FakeScaler")
          .ok());
  ASSERT_TRUE(
      dictionary.Register("FakeScaler", TaskType::kFit, "tfl.FakeScaler")
          .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckCatalog(dictionary, registry);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCheck(report, "catalog.tolerance-mismatch");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(StaticCatalogTest, LogicalOpMismatchAndUnsupportedTaskAreErrors) {
  ml::OperatorRegistry registry;
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "FakeScaler", "skl", ml::Tolerance::kNumeric,
                      ml::Determinism::kDeterministic))
                  .ok());
  core::Dictionary dictionary;
  // Entry binds an impl that implements a different logical operator.
  ASSERT_TRUE(
      dictionary.Register("OtherOp", TaskType::kFit, "skl.FakeScaler").ok());
  // Entry binds a task type the impl does not expose (probe cannot
  // predict).
  ASSERT_TRUE(
      dictionary.Register("FakeScaler", TaskType::kPredict, "skl.FakeScaler")
          .ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckCatalog(dictionary, registry);
  EXPECT_TRUE(FindCheck(report, "catalog.logical-op-mismatch") != nullptr);
  EXPECT_TRUE(FindCheck(report, "catalog.unsupported-task") != nullptr);
}

// Impls outside the registry are legal single-implementation operators
// (paper §IV-C): warning, never error.
TEST(StaticCatalogTest, UnknownImplIsOnlyAWarning) {
  ml::OperatorRegistry registry;
  core::Dictionary dictionary;
  ASSERT_TRUE(
      dictionary.Register("Mystery", TaskType::kFit, "skl.Mystery").ok());
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckCatalog(dictionary, registry);
  EXPECT_TRUE(report.ok());
  const Diagnostic* d = FindCheck(report, "catalog.unknown-impl");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

// The shipped catalog must audit clean — every built-in equivalence class
// is internally consistent.
TEST(StaticCatalogTest, BuiltinCatalogIsSound) {
  const ml::OperatorRegistry& registry = ml::OperatorRegistry::Global();
  const core::Dictionary dictionary =
      core::Dictionary::FromRegistry(registry);
  const StaticAnalyzer analyzer;
  const AnalysisReport report = analyzer.CheckCatalog(dictionary, registry);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.num_warnings(), 0) << report.ToString();
}

// ---------------------------------------------------------------------------
// Pass 3: determinism lint.

// Seeded defect: a non-deterministic op on a bitwise-contract path.
TEST(StaticDeterminismTest, NonDeterministicOpOnBitwisePathIsError) {
  ml::OperatorRegistry registry;
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "WallClockScaler", "skl", ml::Tolerance::kNumeric,
                      ml::Determinism::kNonDeterministic))
                  .ok());
  core::Dictionary dictionary;
  ASSERT_TRUE(dictionary
                  .Register("WallClockScaler", TaskType::kFit,
                            "skl.WallClockScaler")
                  .ok());
  PipelineGraph g;
  const NodeId train =
      *g.AddArtifact(MakeArtifact("train", ArtifactKind::kTrain, 100, 4));
  const NodeId state =
      *g.AddArtifact(MakeArtifact("state", ArtifactKind::kOpState, 1, 4));
  ASSERT_TRUE(g.AddTask(MakeTask("WallClockScaler", TaskType::kFit,
                                 "skl.WallClockScaler", 7),
                        {train}, {state})
                  .ok());

  StaticAnalyzerOptions bitwise;
  bitwise.require_bitwise = true;
  const AnalysisReport strict =
      StaticAnalyzer(bitwise).CheckDeterminism(g, dictionary, registry);
  EXPECT_FALSE(strict.ok());
  const Diagnostic* d = FindCheck(strict, "determinism.non-deterministic-op");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 7);

  // Off the bitwise path the same finding is advisory.
  const AnalysisReport lax =
      StaticAnalyzer().CheckDeterminism(g, dictionary, registry);
  EXPECT_TRUE(lax.ok());
  EXPECT_TRUE(FindCheck(lax, "determinism.non-deterministic-op") != nullptr);
}

// A deterministic impl whose dictionary-equivalent substitute is
// non-deterministic is just as dangerous: the augmenter may bind it.
TEST(StaticDeterminismTest, NonDeterministicSubstituteIsFlagged) {
  ml::OperatorRegistry registry;
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "MixedScaler", "skl", ml::Tolerance::kNumeric,
                      ml::Determinism::kDeterministic))
                  .ok());
  ASSERT_TRUE(registry
                  .Register(std::make_unique<ProbeOp>(
                      "MixedScaler", "tfl", ml::Tolerance::kNumeric,
                      ml::Determinism::kNonDeterministic))
                  .ok());
  core::Dictionary dictionary;
  ASSERT_TRUE(
      dictionary.Register("MixedScaler", TaskType::kFit, "skl.MixedScaler")
          .ok());
  ASSERT_TRUE(
      dictionary.Register("MixedScaler", TaskType::kFit, "tfl.MixedScaler")
          .ok());
  PipelineGraph g;
  const NodeId train =
      *g.AddArtifact(MakeArtifact("train", ArtifactKind::kTrain, 100, 4));
  const NodeId state =
      *g.AddArtifact(MakeArtifact("state", ArtifactKind::kOpState, 1, 4));
  ASSERT_TRUE(g.AddTask(MakeTask("MixedScaler", TaskType::kFit,
                                 "skl.MixedScaler", 3),
                        {train}, {state})
                  .ok());
  StaticAnalyzerOptions bitwise;
  bitwise.require_bitwise = true;
  const AnalysisReport report =
      StaticAnalyzer(bitwise).CheckDeterminism(g, dictionary, registry);
  EXPECT_FALSE(report.ok());
  const Diagnostic* d = FindCheck(report, "determinism.non-deterministic-op");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("tfl.MixedScaler"), std::string::npos);
}

// Every built-in implementation honours the bitwise contract (the
// executor differential suite proves byte-identical payloads).
TEST(StaticDeterminismTest, BuiltinOpsAreDeterministic) {
  const ml::OperatorRegistry& registry = ml::OperatorRegistry::Global();
  for (const std::string& lop : registry.LogicalOps()) {
    for (const ml::PhysicalOperator* op : registry.ImplsFor(lop)) {
      EXPECT_EQ(op->determinism(), ml::Determinism::kDeterministic)
          << op->impl_name();
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 4: cost-model monotonicity.

TEST(StaticCostTest, NegativeAndNonFiniteWeightsAreErrors) {
  const StaticAnalyzer analyzer;
  EXPECT_TRUE(analyzer.CheckCostMonotonicity({0.0, 1.5}, {0.1}).ok());
  const AnalysisReport negative =
      analyzer.CheckCostMonotonicity({1.0, -2.0}, {});
  EXPECT_TRUE(FindCheck(negative, "cost.non-monotone") != nullptr);
  const AnalysisReport nan = analyzer.CheckCostMonotonicity(
      {std::nan("")}, {std::numeric_limits<double>::infinity()});
  EXPECT_EQ(nan.num_errors(), 2);
}

// ---------------------------------------------------------------------------
// Runtime wiring: fail-fast admission + verified CheckPlan skip.

core::HyppoSystem MakeSystem(bool static_checks, bool verify_plans) {
  core::HyppoSystem::Options options;
  options.runtime.simulate = true;
  options.runtime.static_checks = static_checks;
  options.runtime.verify_plans = verify_plans;
  return core::HyppoSystem(options);
}

Result<Pipeline> CleanPipeline(const std::string& id) {
  PipelineBuilder b(id);
  HYPPO_ASSIGN_OR_RETURN(NodeId data, b.LoadDataset("unit", 600, 6));
  HYPPO_ASSIGN_OR_RETURN(auto split, b.Split(data));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler, b.Fit("StandardScaler", "skl.StandardScaler",
                           split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s, b.Transform(scaler, split.second));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model, b.Fit("DecisionTreeClassifier",
                          "skl.DecisionTreeClassifier", split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, b.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(b.Evaluate(preds, test_s, "accuracy").status());
  return std::move(b).Build();
}

TEST(StaticRuntimeTest, MalformedPipelineIsRejectedAtSubmit) {
  core::HyppoSystem system = MakeSystem(/*static_checks=*/true,
                                        /*verify_plans=*/false);
  PipelineBuilder b("bad");
  const NodeId wide = *b.LoadDataset("d10", 100, 10);
  const NodeId narrow = *b.LoadDataset("d5", 100, 5);
  const auto split = *b.Split(wide);
  const NodeId scaler =
      *b.Fit("StandardScaler", "skl.StandardScaler", split.first);
  ASSERT_TRUE(b.Transform(scaler, narrow).ok());
  const Pipeline pipeline = *std::move(b).Build();
  const auto run = system.RunPipeline(pipeline);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsInvalidArgument()) << run.status();
  EXPECT_NE(run.status().message().find("shape.dim-mismatch"),
            std::string::npos)
      << run.status();
  // Fail-fast: nothing was recorded or executed for the rejected submit.
  EXPECT_EQ(system.runtime().history().num_tasks(), 0);
}

TEST(StaticRuntimeTest, StaticallyClearedPlanSkipsRuntimeCheckPlan) {
  core::HyppoSystem system = MakeSystem(/*static_checks=*/true,
                                        /*verify_plans=*/true);
  const auto run = system.RunPipeline(*CleanPipeline("p1"));
  ASSERT_TRUE(run.ok()) << run.status();
  // The submit-time pre-check cleared the plan, so the executor's
  // CheckPlan re-verification was skipped — the fig9b overhead win.
  EXPECT_GE(system.runtime().monitor().num_static_clears(), 1);
  EXPECT_GE(system.runtime().monitor().num_plan_checks_skipped(), 1);

  // With static checks off the executor verification runs as before.
  core::HyppoSystem baseline = MakeSystem(/*static_checks=*/false,
                                          /*verify_plans=*/true);
  const auto run2 = baseline.RunPipeline(*CleanPipeline("p1"));
  ASSERT_TRUE(run2.ok()) << run2.status();
  EXPECT_EQ(baseline.runtime().monitor().num_static_clears(), 0);
  EXPECT_EQ(baseline.runtime().monitor().num_plan_checks_skipped(), 0);
}

// ---------------------------------------------------------------------------
// Shared JSON emitter.

TEST(JsonDiagnosticsTest, EmitsStableMachineReadableLayout) {
  AnalysisReport report;
  Diagnostic d;
  d.severity = Severity::kError;
  d.check = "shape.dim-mismatch";
  d.entity = EntityKind::kEdge;
  d.entity_id = 7;
  d.line = 5;
  d.column = 12;
  d.message = "a \"quoted\"\nmessage";
  report.Add(std::move(d));
  report.AddWarning("catalog.unknown-impl", "advisory");
  const std::string json = ReportToJson(report, "examples/p.hyppo");
  EXPECT_NE(json.find("\"target\": \"examples/p.hyppo\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1, \"warnings\": 1, \"clean\": false"),
            std::string::npos);
  EXPECT_NE(json.find("\"check\": \"shape.dim-mismatch\""),
            std::string::npos);
  EXPECT_NE(json.find("\"entity\": \"edge\", \"entity_id\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"line\": 5, \"column\": 12"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\"\\nmessage"), std::string::npos);

  const AnalysisReport empty;
  const std::string clean = ReportToJson(empty, "t");
  EXPECT_NE(clean.find("\"clean\": true"), std::string::npos);
  EXPECT_NE(clean.find("\"diagnostics\": []"), std::string::npos);
}

}  // namespace
}  // namespace hyppo::analysis
