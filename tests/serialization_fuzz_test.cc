// Serialization robustness: every payload kind round-trips bit-exactly,
// and corrupted buffers — every truncation point, systematic bit flips —
// come back as clean Status errors, never crashes, hangs, or huge
// allocations. Runs under the sanitizer CI jobs via the chaos label.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ml/op_state.h"
#include "storage/serialization.h"

namespace hyppo::storage {
namespace {

ml::FlatTree MakeTree() {
  ml::FlatTree tree;
  tree.feature = {0, -1, -1};
  tree.threshold = {0.5, 0.0, 0.0};
  tree.left = {1, -1, -1};
  tree.right = {2, -1, -1};
  tree.value = {0.0, -1.5, 2.5};
  return tree;
}

// One payload per PayloadTag: monostate, dataset, the four op-state
// variants, predictions, scalar value.
std::vector<ArtifactPayload> EveryPayloadKind() {
  std::vector<ArtifactPayload> payloads;
  payloads.emplace_back(std::monostate{});

  auto dataset = std::make_shared<ml::Dataset>(5, 3);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      dataset->at(r, c) = static_cast<double>(r) - 0.25 * c;
    }
  }
  payloads.emplace_back(ml::DatasetPtr(dataset));

  auto vector_state = std::make_shared<ml::VectorState>("StandardScaler");
  vector_state->vectors["mean"] = {1.0, 2.0, 3.0};
  vector_state->vectors["std"] = {0.5, 0.5, 0.5};
  vector_state->scalars["n"] = 5.0;
  payloads.emplace_back(ml::OpStatePtr(vector_state));

  auto tree_state =
      std::make_shared<ml::TreeState>("DecisionTreeClassifier");
  tree_state->tree = MakeTree();
  tree_state->is_classifier = true;
  payloads.emplace_back(ml::OpStatePtr(tree_state));

  auto forest_state =
      std::make_shared<ml::ForestState>("RandomForestRegressor");
  forest_state->trees = {MakeTree(), MakeTree()};
  forest_state->tree_weights = {0.5, 0.5};
  forest_state->base_prediction = 0.125;
  payloads.emplace_back(ml::OpStatePtr(forest_state));

  auto ensemble_state =
      std::make_shared<ml::EnsembleState>("StackingRegressor");
  ensemble_state->base_states = {vector_state, tree_state};
  ensemble_state->base_logical_ops = {"StandardScaler",
                                      "DecisionTreeClassifier"};
  ensemble_state->base_impls = {"skl.StandardScaler",
                                "skl.DecisionTreeClassifier"};
  ensemble_state->meta_weights = {0.75, 0.25};
  ensemble_state->meta_intercept = -0.5;
  payloads.emplace_back(ml::OpStatePtr(ensemble_state));

  payloads.emplace_back(ml::PredictionsPtr(
      std::make_shared<const std::vector<double>>(
          std::vector<double>{1.0, -2.5, 0.0, 1e300})));

  payloads.emplace_back(0.8125);
  return payloads;
}

TEST(SerializationFuzzTest, EveryPayloadTagRoundTripsBitExact) {
  for (const ArtifactPayload& payload : EveryPayloadKind()) {
    auto bytes = SerializePayload(payload);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto decoded = DeserializePayload(*bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->index(), payload.index());
    // Re-encoding the decoded payload reproduces the exact bytes: the
    // strongest cheap deep-equality check the codec offers.
    auto reencoded = SerializePayload(*decoded);
    ASSERT_TRUE(reencoded.ok());
    EXPECT_EQ(*reencoded, *bytes);
  }
}

TEST(SerializationFuzzTest, EveryTruncationFailsCleanly) {
  for (const ArtifactPayload& payload : EveryPayloadKind()) {
    auto bytes = SerializePayload(payload);
    ASSERT_TRUE(bytes.ok());
    for (size_t cut = 0; cut < bytes->size(); ++cut) {
      auto decoded = DeserializePayload(bytes->substr(0, cut));
      EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " of "
                                 << bytes->size();
    }
  }
}

TEST(SerializationFuzzTest, BitFlipsNeverCrash) {
  for (const ArtifactPayload& payload : EveryPayloadKind()) {
    auto bytes = SerializePayload(payload);
    ASSERT_TRUE(bytes.ok());
    // Flip every bit of the first 64 bytes (headers, tags, length
    // prefixes — where a wrong value can mislead the decoder worst), then
    // one bit per byte across the rest.
    for (size_t pos = 0; pos < bytes->size(); ++pos) {
      const int nbits = pos < 64 ? 8 : 1;
      for (int bit = 0; bit < nbits; ++bit) {
        std::string mutated = *bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
        // Either a clean error or a structurally valid decode of
        // different content — both fine; a crash/UB/OOM is the failure.
        auto decoded = DeserializePayload(mutated);
        if (decoded.ok()) {
          (void)SerializePayload(*decoded);
        }
      }
    }
  }
}

TEST(SerializationFuzzTest, HugeClaimedSizesRejectedWithoutAllocation) {
  // A dataset header claiming absurd dimensions must be rejected by the
  // plausibility bound (claimed cells vs bytes actually present), not
  // attempted as a multi-terabyte allocation.
  BinaryWriter writer;
  writer.WriteU32(0x48595031);        // payload magic "HYP1"
  writer.WriteU32(1);                 // PayloadTag::kDataset
  writer.WriteI64(int64_t{1} << 33);  // rows
  writer.WriteI64(int64_t{1} << 33);  // cols
  auto decoded = DeserializePayload(writer.Take());
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError() ||
              decoded.status().IsIoError());

  // Negative dimensions are equally invalid.
  BinaryWriter negative;
  negative.WriteU32(0x48595031);
  negative.WriteU32(1);
  negative.WriteI64(-4);
  negative.WriteI64(8);
  EXPECT_FALSE(DeserializePayload(negative.Take()).ok());
}

}  // namespace
}  // namespace hyppo::storage
