#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/registry.h"

namespace hyppo::ml {
namespace {

DatasetPtr RandomDataset(int64_t rows, int64_t cols, uint64_t seed,
                         bool with_nans = false, bool regression = false) {
  Rng rng(seed);
  auto data = std::make_shared<Dataset>(rows, cols);
  std::vector<double> target(static_cast<size_t>(rows), 0.0);
  std::vector<double> w(static_cast<size_t>(cols));
  for (auto& v : w) {
    v = rng.Gaussian();
  }
  for (int64_t r = 0; r < rows; ++r) {
    double dot = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const double value = rng.Gaussian() + (c % 2 == 0 ? 1.0 : -0.5);
      data->at(r, c) = value;
      dot += w[static_cast<size_t>(c)] * value;
    }
    target[static_cast<size_t>(r)] =
        regression ? dot + 0.1 * rng.Gaussian() : (dot > 0.0 ? 1.0 : 0.0);
  }
  if (with_nans) {
    for (int64_t r = 0; r < rows; ++r) {
      if (rng.Bernoulli(0.07)) {
        data->at(r, 0) = std::nan("");
      }
    }
  }
  data->set_target(std::move(target));
  return data;
}

Result<TaskOutputs> RunTask(const std::string& impl, MlTask task,
                            const TaskInputs& inputs, const Config& config) {
  auto op = OperatorRegistry::Global().Get(impl);
  if (!op.ok()) {
    return op.status();
  }
  return (*op)->Execute(task, inputs, config);
}

// Fits one impl and transforms held-out data with it.
Result<Dataset> FitTransform(const std::string& impl, const DatasetPtr& train,
                             const DatasetPtr& apply, const Config& config) {
  TaskInputs fit_in;
  fit_in.datasets.push_back(train);
  HYPPO_ASSIGN_OR_RETURN(TaskOutputs fit_out,
                         RunTask(impl, MlTask::kFit, fit_in, config));
  TaskInputs tr_in;
  tr_in.states = fit_out.states;
  tr_in.datasets.push_back(apply);
  HYPPO_ASSIGN_OR_RETURN(TaskOutputs tr_out,
                         RunTask(impl, MlTask::kTransform, tr_in, config));
  return *tr_out.datasets[0];
}

// ---------------------------------------------------------------------------
// Exact-equivalence property: for these logical operators, any two
// registered implementations produce numerically identical transforms
// (paper §III-C2: equivalent tasks produce identical results on the same
// input). This is the property the augmenter's name-collision equivalence
// relies on.

struct TransformCase {
  const char* logical_op;
  const char* config;  // "k=v;k=v"
  double tolerance;
};

Config ParseTestConfig(const std::string& text) {
  Config config;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string pair = text.substr(start, end - start);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      config.Set(pair.substr(0, eq), pair.substr(eq + 1));
    }
    start = end + 1;
  }
  return config;
}

class TransformEquivalenceTest
    : public ::testing::TestWithParam<TransformCase> {};

TEST_P(TransformEquivalenceTest, ImplementationsAgree) {
  const TransformCase& test_case = GetParam();
  const Config config = ParseTestConfig(test_case.config);
  const bool needs_nans =
      std::string(test_case.logical_op) == "SimpleImputer";
  DatasetPtr train = RandomDataset(300, 6, 11, needs_nans);
  DatasetPtr apply = RandomDataset(120, 6, 12, needs_nans);
  const auto impls =
      OperatorRegistry::Global().ImplsFor(test_case.logical_op);
  ASSERT_GE(impls.size(), 2u) << test_case.logical_op;
  auto reference =
      FitTransform(impls[0]->impl_name(), train, apply, config);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (size_t i = 1; i < impls.size(); ++i) {
    auto other = FitTransform(impls[i]->impl_name(), train, apply, config);
    ASSERT_TRUE(other.ok()) << other.status();
    ASSERT_EQ(other->rows(), reference->rows());
    ASSERT_EQ(other->cols(), reference->cols());
    double max_diff = 0.0;
    for (int64_t r = 0; r < reference->rows(); ++r) {
      for (int64_t c = 0; c < reference->cols(); ++c) {
        max_diff = std::max(max_diff, std::fabs(reference->at(r, c) -
                                                other->at(r, c)));
      }
    }
    EXPECT_LE(max_diff, test_case.tolerance)
        << impls[i]->impl_name() << " vs " << impls[0]->impl_name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Preprocessors, TransformEquivalenceTest,
    ::testing::Values(
        TransformCase{"StandardScaler", "", 1e-9},
        TransformCase{"MinMaxScaler", "", 1e-12},
        TransformCase{"RobustScaler", "", 1e-9},
        TransformCase{"MaxAbsScaler", "", 1e-12},
        TransformCase{"SimpleImputer", "strategy=mean", 1e-9},
        TransformCase{"SimpleImputer", "strategy=median", 1e-9},
        TransformCase{"PolynomialFeatures", "degree=2", 1e-12},
        TransformCase{"VarianceThreshold", "threshold=0.0", 1e-12},
        TransformCase{"QuantileTransformer", "n_quantiles=50", 1e-12},
        TransformCase{"PCA", "n_components=3", 1e-6}),
    [](const ::testing::TestParamInfo<TransformCase>& info) {
      std::string name = info.param.logical_op;
      const std::string config = info.param.config;
      if (!config.empty()) {
        name += "_";
        for (char c : config) {
          name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
        }
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Exact-equivalence for predictions of deterministic models.

class PredictEquivalenceTest
    : public ::testing::TestWithParam<TransformCase> {};

TEST_P(PredictEquivalenceTest, ImplementationsAgreeOnPredictions) {
  const TransformCase& test_case = GetParam();
  const Config config = ParseTestConfig(test_case.config);
  DatasetPtr train = RandomDataset(400, 5, 21, false, /*regression=*/true);
  DatasetPtr test = RandomDataset(150, 5, 22, false, /*regression=*/true);
  const auto impls =
      OperatorRegistry::Global().ImplsFor(test_case.logical_op);
  ASSERT_GE(impls.size(), 2u);
  std::vector<std::vector<double>> predictions;
  for (const PhysicalOperator* op : impls) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(train);
    auto fit_out = op->Execute(MlTask::kFit, fit_in, config);
    ASSERT_TRUE(fit_out.ok()) << op->impl_name() << ": " << fit_out.status();
    TaskInputs pr_in;
    pr_in.states = fit_out->states;
    pr_in.datasets.push_back(test);
    auto pr_out = op->Execute(MlTask::kPredict, pr_in, config);
    ASSERT_TRUE(pr_out.ok()) << pr_out.status();
    predictions.push_back(*pr_out->predictions[0]);
  }
  for (size_t i = 1; i < predictions.size(); ++i) {
    double max_diff = 0.0;
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      max_diff =
          std::max(max_diff, std::fabs(predictions[0][r] - predictions[i][r]));
    }
    EXPECT_LE(max_diff, test_case.tolerance) << impls[i]->impl_name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    LinearModels, PredictEquivalenceTest,
    ::testing::Values(
        TransformCase{"LinearRegression", "", 1e-5},
        TransformCase{"Ridge", "alpha=1.0", 1e-5},
        TransformCase{"Lasso", "alpha=0.05", 2e-3},
        TransformCase{"ElasticNet", "alpha=0.05;l1_ratio=0.5", 2e-3},
        TransformCase{"LogisticRegression", "alpha=0.001", 1e-4}),
    [](const ::testing::TestParamInfo<TransformCase>& info) {
      return std::string(info.param.logical_op);
    });

// ---------------------------------------------------------------------------
// Statistical equivalence for stochastic / discretized operators (SVM,
// trees, forests, boosting, k-means): both implementations must reach
// similar quality, not bitwise equality (§III-C2, note on stochastic
// tasks).

TEST(StatisticalEquivalenceTest, LinearSvmImplsAgreeOnMostLabels) {
  DatasetPtr train = RandomDataset(600, 5, 31);
  DatasetPtr test = RandomDataset(300, 5, 32);
  Config config;
  config.SetDouble("C", 1.0);
  std::vector<std::vector<double>> preds;
  for (const char* impl : {"skl.LinearSVM", "lib.LinearSVM"}) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(train);
    auto fit_out = RunTask(impl, MlTask::kFit, fit_in, config);
    ASSERT_TRUE(fit_out.ok()) << fit_out.status();
    TaskInputs pr_in;
    pr_in.states = fit_out->states;
    pr_in.datasets.push_back(test);
    auto pr_out = RunTask(impl, MlTask::kPredict, pr_in, config);
    ASSERT_TRUE(pr_out.ok());
    preds.push_back(*pr_out->predictions[0]);
  }
  int agree = 0;
  for (size_t i = 0; i < preds[0].size(); ++i) {
    agree += (preds[0][i] == preds[1][i]) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / preds[0].size(), 0.9);
}

struct TreeCase {
  const char* logical_op;
  const char* config;
  bool classification;
  double min_quality;  // accuracy or R2 both impls must reach
};

class TreeEquivalenceTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreeEquivalenceTest, BothImplsLearnTheConcept) {
  const TreeCase& test_case = GetParam();
  const Config config = ParseTestConfig(test_case.config);
  // Train and test must share the underlying concept: slice one dataset.
  DatasetPtr full =
      RandomDataset(1100, 5, 41, false, !test_case.classification);
  std::vector<int64_t> train_rows(800);
  std::vector<int64_t> test_rows(300);
  for (int64_t i = 0; i < 800; ++i) {
    train_rows[static_cast<size_t>(i)] = i;
  }
  for (int64_t i = 0; i < 300; ++i) {
    test_rows[static_cast<size_t>(i)] = 800 + i;
  }
  DatasetPtr train =
      std::make_shared<const Dataset>(full->SelectRows(train_rows));
  DatasetPtr test =
      std::make_shared<const Dataset>(full->SelectRows(test_rows));
  const auto impls =
      OperatorRegistry::Global().ImplsFor(test_case.logical_op);
  ASSERT_GE(impls.size(), 2u);
  for (const PhysicalOperator* op : impls) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(train);
    auto fit_out = op->Execute(MlTask::kFit, fit_in, config);
    ASSERT_TRUE(fit_out.ok()) << op->impl_name() << ": " << fit_out.status();
    TaskInputs pr_in;
    pr_in.states = fit_out->states;
    pr_in.datasets.push_back(test);
    auto pr_out = op->Execute(MlTask::kPredict, pr_in, config);
    ASSERT_TRUE(pr_out.ok());
    const std::vector<double>& preds = *pr_out->predictions[0];
    if (test_case.classification) {
      auto quality = Accuracy(preds, test->target());
      EXPECT_GE(*quality, test_case.min_quality) << op->impl_name();
    } else {
      auto quality = R2(preds, test->target());
      EXPECT_GE(*quality, test_case.min_quality) << op->impl_name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Trees, TreeEquivalenceTest,
    ::testing::Values(
        TreeCase{"DecisionTreeClassifier", "max_depth=6", true, 0.75},
        TreeCase{"DecisionTreeRegressor", "max_depth=6", false, 0.5},
        TreeCase{"RandomForestClassifier",
                 "n_estimators=15;max_depth=7;seed=3", true, 0.78},
        TreeCase{"RandomForestRegressor",
                 "n_estimators=15;max_depth=7;seed=3", false, 0.55},
        TreeCase{"GradientBoostingRegressor",
                 "n_estimators=40;max_depth=3;learning_rate=0.15", false,
                 0.6}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return std::string(info.param.logical_op);
    });

TEST(KMeansTest, ImplsProduceSimilarInertia) {
  DatasetPtr data = RandomDataset(500, 4, 51);
  Config config;
  config.SetInt("n_clusters", 4);
  config.SetInt("seed", 9);
  double inertias[2];
  int index = 0;
  for (const char* impl : {"skl.KMeans", "tfl.KMeans"}) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(data);
    auto fit_out = RunTask(impl, MlTask::kFit, fit_in, config);
    ASSERT_TRUE(fit_out.ok()) << fit_out.status();
    // Inertia: sum of squared min distances, via transform.
    TaskInputs tr_in;
    tr_in.states = fit_out->states;
    tr_in.datasets.push_back(data);
    auto tr_out = RunTask(impl, MlTask::kTransform, tr_in, config);
    ASSERT_TRUE(tr_out.ok());
    const Dataset& distances = *tr_out->datasets[0];
    double inertia = 0.0;
    for (int64_t r = 0; r < distances.rows(); ++r) {
      double best = distances.at(r, 0);
      for (int64_t c = 1; c < distances.cols(); ++c) {
        best = std::min(best, distances.at(r, c));
      }
      inertia += best * best;
    }
    inertias[index++] = inertia;
  }
  // Mini-batch k-means is approximate: allow 40% slack.
  EXPECT_LT(std::fabs(inertias[0] - inertias[1]) /
                std::max(inertias[0], inertias[1]),
            0.4);
}

// ---------------------------------------------------------------------------
// Split, ensembles, evaluator, registry.

TEST(SplitTest, ImplsProduceIdenticalPartitions) {
  DatasetPtr data = RandomDataset(200, 3, 61);
  Config config;
  config.SetDouble("test_size", 0.25);
  config.SetInt("seed", 5);
  std::vector<TaskOutputs> outs;
  for (const char* impl : {"skl.TrainTestSplit", "tfl.TrainTestSplit"}) {
    TaskInputs in;
    in.datasets.push_back(data);
    auto out = RunTask(impl, MlTask::kSplit, in, config);
    ASSERT_TRUE(out.ok()) << out.status();
    ASSERT_EQ(out->datasets.size(), 2u);
    outs.push_back(*out);
  }
  for (int part = 0; part < 2; ++part) {
    const Dataset& a = *outs[0].datasets[static_cast<size_t>(part)];
    const Dataset& b = *outs[1].datasets[static_cast<size_t>(part)];
    ASSERT_EQ(a.rows(), b.rows());
    for (int64_t r = 0; r < a.rows(); ++r) {
      for (int64_t c = 0; c < a.cols(); ++c) {
        ASSERT_DOUBLE_EQ(a.at(r, c), b.at(r, c));
      }
    }
    for (int64_t r = 0; r < a.rows(); ++r) {
      ASSERT_DOUBLE_EQ(a.target()[static_cast<size_t>(r)],
                       b.target()[static_cast<size_t>(r)]);
    }
  }
  EXPECT_EQ(outs[0].datasets[1]->rows(), 50);
  EXPECT_EQ(outs[0].datasets[0]->rows(), 150);
}

TEST(SplitTest, RejectsBadTestSize) {
  DatasetPtr data = RandomDataset(20, 2, 62);
  Config config;
  config.SetDouble("test_size", 1.5);
  TaskInputs in;
  in.datasets.push_back(data);
  EXPECT_TRUE(RunTask("skl.TrainTestSplit", MlTask::kSplit, in, config)
                  .status()
                  .IsInvalidArgument());
}

TEST(EnsembleTest, VotingAveragesBaseModels) {
  DatasetPtr train = RandomDataset(300, 4, 71, false, true);
  DatasetPtr test = RandomDataset(100, 4, 72, false, true);
  // Fit two base regressors.
  std::vector<OpStatePtr> states;
  std::vector<std::vector<double>> base_preds;
  for (const char* impl : {"skl.Ridge", "skl.LinearRegression"}) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(train);
    auto fit_out = RunTask(impl, MlTask::kFit, fit_in, Config());
    ASSERT_TRUE(fit_out.ok());
    states.push_back(fit_out->states[0]);
    TaskInputs pr_in;
    pr_in.states = fit_out->states;
    pr_in.datasets.push_back(test);
    auto pr_out = RunTask(impl, MlTask::kPredict, pr_in, Config());
    base_preds.push_back(*pr_out->predictions[0]);
  }
  TaskInputs ens_fit;
  ens_fit.states = states;
  auto ens_state =
      RunTask("skl.VotingRegressor", MlTask::kFit, ens_fit, Config());
  ASSERT_TRUE(ens_state.ok()) << ens_state.status();
  TaskInputs ens_pr;
  ens_pr.states = ens_state->states;
  ens_pr.datasets.push_back(test);
  auto ens_out =
      RunTask("skl.VotingRegressor", MlTask::kPredict, ens_pr, Config());
  ASSERT_TRUE(ens_out.ok()) << ens_out.status();
  const std::vector<double>& combined = *ens_out->predictions[0];
  for (size_t i = 0; i < combined.size(); ++i) {
    EXPECT_NEAR(combined[i], 0.5 * (base_preds[0][i] + base_preds[1][i]),
                1e-9);
  }
}

TEST(EnsembleTest, StackingBeatsOrMatchesWorstBase) {
  DatasetPtr train = RandomDataset(500, 4, 81, false, true);
  DatasetPtr test = RandomDataset(200, 4, 82, false, true);
  std::vector<OpStatePtr> states;
  double worst_rmse = 0.0;
  for (const char* impl : {"skl.Ridge", "skl.DecisionTreeRegressor"}) {
    TaskInputs fit_in;
    fit_in.datasets.push_back(train);
    auto fit_out = RunTask(impl, MlTask::kFit, fit_in, Config());
    ASSERT_TRUE(fit_out.ok());
    states.push_back(fit_out->states[0]);
    TaskInputs pr_in;
    pr_in.states = fit_out->states;
    pr_in.datasets.push_back(test);
    auto pr_out = RunTask(impl, MlTask::kPredict, pr_in, Config());
    worst_rmse =
        std::max(worst_rmse, *Rmse(*pr_out->predictions[0], test->target()));
  }
  TaskInputs ens_fit;
  ens_fit.states = states;
  ens_fit.datasets.push_back(train);
  auto ens_state =
      RunTask("skl.StackingRegressor", MlTask::kFit, ens_fit, Config());
  ASSERT_TRUE(ens_state.ok()) << ens_state.status();
  TaskInputs ens_pr;
  ens_pr.states = ens_state->states;
  ens_pr.datasets.push_back(test);
  auto ens_out =
      RunTask("skl.StackingRegressor", MlTask::kPredict, ens_pr, Config());
  ASSERT_TRUE(ens_out.ok());
  const double stacked_rmse =
      *Rmse(*ens_out->predictions[0], test->target());
  EXPECT_LE(stacked_rmse, worst_rmse * 1.05);
}

TEST(EvaluatorTest, ComputesConfiguredMetric) {
  auto test = RandomDataset(50, 2, 91, false, true);
  auto preds = std::make_shared<const std::vector<double>>(test->target());
  TaskInputs in;
  in.predictions.push_back(preds);
  in.datasets.push_back(test);
  Config config;
  config.Set("metric", "rmse");
  auto out = RunTask("skl.Evaluator", MlTask::kEvaluate, in, config);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->values.size(), 1u);
  EXPECT_DOUBLE_EQ(out->values[0], 0.0);
}

TEST(RegistryTest, CatalogIsComprehensive) {
  OperatorRegistry& registry = OperatorRegistry::Global();
  // The paper's dictionary holds ~40 operators; ours registers 40+
  // implementations over 25+ logical operators.
  EXPECT_GE(registry.size(), 40u);
  EXPECT_GE(registry.LogicalOps().size(), 24u);
  // Every logical operator has at least one impl; the optimizable ones
  // have two or more.
  int multi_impl = 0;
  for (const std::string& lop : registry.LogicalOps()) {
    const auto impls = registry.ImplsFor(lop);
    EXPECT_GE(impls.size(), 1u) << lop;
    if (impls.size() >= 2) {
      ++multi_impl;
    }
  }
  EXPECT_GE(multi_impl, 18);
}

TEST(RegistryTest, LookupAndErrors) {
  OperatorRegistry& registry = OperatorRegistry::Global();
  auto op = registry.Get("skl.StandardScaler");
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)->logical_op(), "StandardScaler");
  EXPECT_EQ((*op)->framework(), "skl");
  EXPECT_TRUE(registry.Get("nope.Missing").status().IsNotFound());
}

TEST(RegistryTest, CostHintsPositiveAndShapeMonotone) {
  OperatorRegistry& registry = OperatorRegistry::Global();
  for (const std::string& lop : registry.LogicalOps()) {
    for (const PhysicalOperator* op : registry.ImplsFor(lop)) {
      for (MlTask task : {MlTask::kFit, MlTask::kTransform, MlTask::kPredict,
                          MlTask::kSplit, MlTask::kEvaluate}) {
        if (!op->SupportsTask(task)) {
          continue;
        }
        const double small = op->CostHint(task, 1000, 10, Config());
        const double large = op->CostHint(task, 100000, 10, Config());
        EXPECT_GT(small, 0.0) << op->impl_name();
        EXPECT_GE(large, small) << op->impl_name();
      }
    }
  }
}

TEST(OperatorTest, ArityValidation) {
  DatasetPtr data = RandomDataset(30, 2, 95);
  TaskInputs empty;
  EXPECT_TRUE(RunTask("skl.StandardScaler", MlTask::kFit, empty, Config())
                  .status()
                  .IsInvalidArgument());
  TaskInputs just_data;
  just_data.datasets.push_back(data);
  EXPECT_TRUE(
      RunTask("skl.StandardScaler", MlTask::kTransform, just_data, Config())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(RunTask("skl.StandardScaler", MlTask::kPredict, just_data,
                      Config())
                  .status()
                  .IsInvalidArgument());
}

TEST(OperatorTest, TaskNamesRoundTrip) {
  for (MlTask task : {MlTask::kSplit, MlTask::kFit, MlTask::kTransform,
                      MlTask::kPredict, MlTask::kEvaluate}) {
    auto parsed = MlTaskFromString(MlTaskToString(task));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, task);
  }
  EXPECT_TRUE(MlTaskFromString("bogus").status().IsInvalidArgument());
}

}  // namespace
}  // namespace hyppo::ml
