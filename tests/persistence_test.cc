#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/history_io.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "storage/serialization.h"
#include "workload/datagen.h"

namespace hyppo {
namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::History;
using core::Pipeline;
using core::PipelineBuilder;
using core::TaskInfo;
using core::TaskType;
using storage::ArtifactPayload;
using storage::DeserializePayload;
using storage::SerializePayload;

std::string TempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hyppo_persistence_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Payload round trips.

TEST(PayloadSerializationTest, Monostate) {
  auto bytes = SerializePayload(ArtifactPayload(std::monostate{}));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  EXPECT_NE(std::get_if<std::monostate>(&*payload), nullptr);
}

TEST(PayloadSerializationTest, ScalarValue) {
  auto bytes = SerializePayload(ArtifactPayload(0.8125));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*payload), 0.8125);
}

TEST(PayloadSerializationTest, Predictions) {
  auto preds = std::make_shared<const std::vector<double>>(
      std::vector<double>{1.0, -2.5, 0.0});
  auto bytes = SerializePayload(ArtifactPayload(ml::PredictionsPtr(preds)));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(**std::get_if<ml::PredictionsPtr>(&*payload), *preds);
}

TEST(PayloadSerializationTest, DatasetRoundTrip) {
  auto original = *workload::GenerateHiggs(50, 6, 7);
  auto bytes = SerializePayload(ArtifactPayload(original));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  const ml::DatasetPtr& restored = std::get<ml::DatasetPtr>(*payload);
  ASSERT_EQ(restored->rows(), original->rows());
  ASSERT_EQ(restored->cols(), original->cols());
  EXPECT_EQ(restored->column_names(), original->column_names());
  for (int64_t r = 0; r < original->rows(); ++r) {
    for (int64_t c = 0; c < original->cols(); ++c) {
      const double a = original->at(r, c);
      const double b = restored->at(r, c);
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b));
      } else {
        EXPECT_DOUBLE_EQ(a, b);
      }
    }
  }
  EXPECT_EQ(restored->target(), original->target());
}

TEST(PayloadSerializationTest, VectorStateRoundTrip) {
  auto state = std::make_shared<ml::VectorState>("StandardScaler");
  state->vectors["shift"] = {1.0, 2.0};
  state->vectors["scale"] = {0.5, 0.25};
  state->scalars["k"] = 3.0;
  auto bytes = SerializePayload(ArtifactPayload(ml::OpStatePtr(state)));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  const auto* restored = dynamic_cast<const ml::VectorState*>(
      std::get<ml::OpStatePtr>(*payload).get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->logical_op(), "StandardScaler");
  EXPECT_EQ(restored->vec("shift"), state->vec("shift"));
  EXPECT_DOUBLE_EQ(restored->scalar("k"), 3.0);
}

// Round-trips a *fitted* model state and checks predictions agree exactly.
TEST(PayloadSerializationTest, ForestStatePredictsIdentically) {
  auto data = *workload::GenerateHiggs(400, 5, 9);
  auto op = *ml::OperatorRegistry::Global().Get("skl.RandomForestClassifier");
  ml::TaskInputs fit_in;
  fit_in.datasets.push_back(data);
  ml::Config config;
  config.SetInt("n_estimators", 5);
  config.SetInt("max_depth", 4);
  auto fit_out = op->Execute(ml::MlTask::kFit, fit_in, config);
  ASSERT_TRUE(fit_out.ok());
  auto bytes =
      SerializePayload(ArtifactPayload(fit_out->states[0]));
  ASSERT_TRUE(bytes.ok());
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok());
  ml::TaskInputs original_in;
  original_in.states = fit_out->states;
  original_in.datasets.push_back(data);
  ml::TaskInputs restored_in;
  restored_in.states.push_back(std::get<ml::OpStatePtr>(*payload));
  restored_in.datasets.push_back(data);
  auto original = op->Execute(ml::MlTask::kPredict, original_in, config);
  auto restored = op->Execute(ml::MlTask::kPredict, restored_in, config);
  ASSERT_TRUE(original.ok() && restored.ok());
  EXPECT_EQ(*original->predictions[0], *restored->predictions[0]);
}

TEST(PayloadSerializationTest, EnsembleStateRoundTrip) {
  auto data = *workload::GenerateHiggs(200, 4, 13);
  auto ridge = *ml::OperatorRegistry::Global().Get("skl.Ridge");
  ml::TaskInputs fit_in;
  fit_in.datasets.push_back(data);
  auto base = ridge->Execute(ml::MlTask::kFit, fit_in, ml::Config());
  ASSERT_TRUE(base.ok());
  auto voting = *ml::OperatorRegistry::Global().Get("skl.VotingRegressor");
  ml::TaskInputs ens_in;
  ens_in.states = base->states;
  ens_in.states.push_back(base->states[0]);
  auto ens = voting->Execute(ml::MlTask::kFit, ens_in, ml::Config());
  ASSERT_TRUE(ens.ok()) << ens.status();
  auto bytes = SerializePayload(ArtifactPayload(ens->states[0]));
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto payload = DeserializePayload(*bytes);
  ASSERT_TRUE(payload.ok()) << payload.status();
  const auto* restored = dynamic_cast<const ml::EnsembleState*>(
      std::get<ml::OpStatePtr>(*payload).get());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->base_states.size(), 2u);
  EXPECT_EQ(restored->base_impls.size(), 2u);
}

TEST(PayloadSerializationTest, RejectsGarbage) {
  EXPECT_TRUE(DeserializePayload("").status().IsParseError());
  EXPECT_TRUE(DeserializePayload("garbage-bytes").status().IsParseError());
  // Valid magic, truncated body.
  auto bytes = SerializePayload(ArtifactPayload(1.0));
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(DeserializePayload(bytes->substr(0, bytes->size() - 3))
                  .status()
                  .IsParseError());
}

// ---------------------------------------------------------------------------
// History serialization.

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t size) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.size_bytes = size;
  info.rows = 10;
  info.cols = 2;
  return info;
}

TEST(HistorySerializationTest, RoundTripPreservesEverything) {
  History history;
  const NodeId raw =
      history.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 4000));
  history.RegisterSourceData(raw).ValueOrDie();
  const NodeId mid =
      history.Observe(MakeArtifact("mid", ArtifactKind::kTrain, 3000));
  const NodeId state =
      history.Observe(MakeArtifact("state", ArtifactKind::kOpState, 100));
  TaskInfo split;
  split.logical_op = "TrainTestSplit";
  split.type = TaskType::kSplit;
  split.impl = "skl.TrainTestSplit";
  split.config.SetDouble("test_size", 0.25);
  history.ObserveTask(split, {raw}, {mid}, 1.5).ValueOrDie();
  TaskInfo fit;
  fit.logical_op = "StandardScaler";
  fit.type = TaskType::kFit;
  fit.impl = "tfl.StandardScaler";
  history.ObserveTask(fit, {mid}, {state}, 0.25).ValueOrDie();
  history.ObserveTask(fit, {mid}, {state}, 0.75).ValueOrDie();
  history.RecordAccess(mid, 3.5);
  history.RecordComputeSeconds(mid, 1.5);
  history.MarkMaterialized(state).Abort("materialize");

  auto bytes = core::SerializeHistory(history);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto restored = core::DeserializeHistory(*bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->num_artifacts(), history.num_artifacts());
  EXPECT_EQ(restored->num_tasks(), history.num_tasks());
  const NodeId r_mid = *restored->graph().FindArtifact("mid");
  EXPECT_EQ(restored->record(r_mid).access_count, 1);
  EXPECT_DOUBLE_EQ(restored->record(r_mid).compute_seconds, 1.5);
  const NodeId r_state = *restored->graph().FindArtifact("state");
  EXPECT_TRUE(restored->IsMaterialized(r_state));
  const NodeId r_raw = *restored->graph().FindArtifact("raw");
  EXPECT_TRUE(restored->IsSourceData(r_raw));
  EXPECT_TRUE(restored->IsMaterialized(r_raw));
  // The fit edge keeps its mean duration.
  bool found_fit = false;
  for (EdgeId e : restored->graph().hypergraph().LiveEdges()) {
    if (restored->graph().task(e).impl == "tfl.StandardScaler") {
      EXPECT_DOUBLE_EQ(restored->ObservedTaskSeconds(e, -1.0), 0.5);
      found_fit = true;
    }
  }
  EXPECT_TRUE(found_fit);
  // And the split keeps its configuration (part of equivalence identity).
  bool found_split = false;
  for (EdgeId e : restored->graph().hypergraph().LiveEdges()) {
    if (restored->graph().task(e).logical_op == "TrainTestSplit") {
      EXPECT_EQ(restored->graph().task(e).config.GetDouble("test_size", 0),
                0.25);
      found_split = true;
    }
  }
  EXPECT_TRUE(found_split);
}

TEST(HistorySerializationTest, RejectsCorruptedBytes) {
  EXPECT_TRUE(core::DeserializeHistory("").status().IsParseError());
  History history;
  history.Observe(MakeArtifact("a", ArtifactKind::kData, 10));
  auto bytes = core::SerializeHistory(history);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted.resize(corrupted.size() / 2);
  EXPECT_TRUE(core::DeserializeHistory(corrupted).status().IsParseError());
}

// ---------------------------------------------------------------------------
// Cross-session catalog reuse: the across-experiments scenario of §I.

TEST(CatalogTest, SecondSessionReusesFirstSessionsWork) {
  const std::string dir = TempDir("catalog");
  const char* code = R"(
data        = load("persist", rows=600, cols=5)
train, test = sk.TrainTestSplit.split(data)
scaler      = sk.StandardScaler.fit(train)
train_s     = scaler.transform(train)
test_s      = scaler.transform(test)
model       = sk.DecisionTreeClassifier.fit(train_s, max_depth=4)
preds       = model.predict(test_s)
score       = evaluate(preds, test_s, metric="accuracy")
)";
  auto dataset = *workload::GenerateHiggs(600, 5, 21);
  double first_score = 0.0;
  size_t first_tasks = 0;
  {
    core::HyppoSystem session1;
    session1.RegisterDataset("persist", dataset);
    auto report = session1.RunCode(code, "s1");
    ASSERT_TRUE(report.ok()) << report.status();
    first_tasks = report->plan.edges.size();
    first_score = std::get<double>(report->target_payloads.begin()->second);
    ASSERT_TRUE(session1.runtime().SaveCatalog(dir).ok());
  }
  {
    // A brand-new session (fresh history) loads the catalog and re-runs
    // the same exploration: almost everything comes back from storage.
    core::HyppoSystem session2;
    session2.RegisterDataset("persist", dataset);
    ASSERT_TRUE(session2.runtime().LoadCatalog(dir).ok());
    EXPECT_GT(session2.runtime().history().num_artifacts(), 0);
    EXPECT_GT(session2.runtime().store().num_entries(), 0u);
    auto report = session2.RunCode(code, "s2");
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_LT(report->plan.edges.size(), first_tasks);
    const double second_score =
        std::get<double>(report->target_payloads.begin()->second);
    EXPECT_DOUBLE_EQ(second_score, first_score);
  }
  std::filesystem::remove_all(dir);
}

TEST(CatalogTest, MissingPayloadFilesAreEvictedOnLoad) {
  const std::string dir = TempDir("evict");
  History history;
  const NodeId state =
      history.Observe(MakeArtifact("state", ArtifactKind::kOpState, 100));
  history.MarkMaterialized(state).Abort("materialize");
  storage::InMemoryArtifactStore store;
  store.Put("state", ArtifactPayload(1.0), 100).Abort("put");
  ASSERT_TRUE(core::SaveCatalog(history, store, dir).ok());
  // Delete the payload file behind the catalog's back.
  std::filesystem::remove(std::filesystem::path(dir) / "artifacts" /
                          "state.bin");
  History loaded;
  storage::InMemoryArtifactStore loaded_store;
  ASSERT_TRUE(core::LoadCatalog(dir, &loaded, &loaded_store).ok());
  const NodeId restored = *loaded.graph().FindArtifact("state");
  EXPECT_FALSE(loaded.IsMaterialized(restored));
  EXPECT_EQ(loaded_store.num_entries(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CatalogTest, LoadFromMissingDirectoryFails) {
  History history;
  storage::InMemoryArtifactStore store;
  EXPECT_TRUE(core::LoadCatalog("/nonexistent/hyppo/catalog", &history,
                                &store)
                  .IsIoError());
}

}  // namespace
}  // namespace hyppo
