#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/graph_checks.h"
#include "analysis/verifier.h"
#include "core/executor.h"
#include "core/history_io.h"
#include "core/hyppo.h"
#include "core/naming.h"
#include "core/pipeline_builder.h"
#include "hypergraph/testing.h"
#include "workload/datagen.h"
#include "workload/scenario.h"

namespace hyppo::analysis {
namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::Augmentation;
using core::History;
using core::Pipeline;
using core::PipelineBuilder;
using core::Plan;
using core::TaskInfo;
using core::TaskType;

// ---------------------------------------------------------------------------
// Diagnostics

TEST(DiagnosticTest, ToStringAndSummary) {
  AnalysisReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.Summary(), "clean");
  report.AddError("plan.unsatisfied-input", "no producer", EntityKind::kEdge,
                  7);
  report.AddWarning("plan.duplicate-producer", "redundant", EntityKind::kNode,
                    3);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.num_errors(), 1);
  EXPECT_EQ(report.num_warnings(), 1);
  EXPECT_EQ(report.diagnostics()[0].ToString(),
            "error [plan.unsatisfied-input] edge 7: no producer");
  EXPECT_EQ(report.Summary(), "1 error, 1 warning");
  EXPECT_TRUE(report.HasCheck("plan.duplicate-producer"));
  EXPECT_FALSE(report.HasCheck("plan.cost-mismatch"));
}

TEST(DiagnosticTest, MergeMovesEverything) {
  AnalysisReport a;
  a.AddError("x", "one");
  AnalysisReport b;
  b.AddWarning("y", "two");
  b.AddError("z", "three");
  a.Merge(std::move(b));
  EXPECT_EQ(a.num_errors(), 2);
  EXPECT_EQ(a.num_warnings(), 1);
}

// Merging overlapping reports (e.g. the lint tool running several passes
// over one catalog) must not duplicate identical diagnostics.
TEST(DiagnosticTest, MergeDeduplicatesIdenticalDiagnostics) {
  AnalysisReport a;
  a.AddError("x", "one", EntityKind::kEdge, 7);
  a.AddWarning("y", "two");
  AnalysisReport b;
  b.AddError("x", "one", EntityKind::kEdge, 7);   // exact duplicate
  b.AddError("x", "one", EntityKind::kEdge, 8);   // different entity id
  b.AddWarning("y", "two");                       // exact duplicate
  b.AddError("y", "two");                         // same text, other severity
  a.Merge(std::move(b));
  EXPECT_EQ(a.num_errors(), 3);
  EXPECT_EQ(a.num_warnings(), 1);

  // Location participates in identity: same check at two source lines is
  // two findings.
  AnalysisReport c;
  Diagnostic located;
  located.severity = Severity::kError;
  located.check = "shape.bad-arity";
  located.message = "m";
  located.line = 3;
  c.Add(located);
  AnalysisReport d;
  d.Add(located);
  Diagnostic other_line = located;
  other_line.line = 9;
  d.Add(other_line);
  c.Merge(std::move(d));
  EXPECT_EQ(c.num_errors(), 2);
}

// ---------------------------------------------------------------------------
// Structural hypergraph checks

// A small DAG: e0 = {0} -> {1,2}, e1 = {1,2} -> {3}.
Hypergraph SmallDag() {
  Hypergraph g;
  g.AddNodes(4);
  g.AddEdge({0}, {1, 2}).ValueOrDie();
  g.AddEdge({1, 2}, {3}).ValueOrDie();
  return g;
}

TEST(CheckHypergraphTest, WellFormedIsClean) {
  const AnalysisReport report = CheckHypergraph(SmallDag());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.num_warnings(), 0);
}

TEST(CheckHypergraphTest, RemoveEdgeKeepsStarsConsistent) {
  Hypergraph g = SmallDag();
  const EdgeId extra = g.AddEdge({0}, {3}).ValueOrDie();
  ASSERT_TRUE(g.RemoveEdge(extra).ok());
  const AnalysisReport report = CheckHypergraph(g);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CheckHypergraphTest, CyclicGraphIsReported) {
  Hypergraph g;
  g.AddNodes(3);
  g.AddEdge({0}, {1}).ValueOrDie();
  g.AddEdge({1}, {2}).ValueOrDie();
  g.AddEdge({2}, {1}).ValueOrDie();  // closes the 1 -> 2 -> 1 cycle
  const AnalysisReport report = CheckHypergraph(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCheck("hypergraph.cycle")) << report.ToString();
}

TEST(CheckHypergraphTest, SelfLoopIsACycle) {
  Hypergraph g;
  g.AddNodes(2);
  g.AddEdge({1}, {1}).ValueOrDie();
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.cycle"));
}

TEST(CheckHypergraphTest, DanglingNodeReferenceIsReported) {
  Hypergraph g = SmallDag();
  HypergraphTestAccess::MutableEdge(g, 1).tail = {1, 99};
  const AnalysisReport report = CheckHypergraph(g);
  EXPECT_TRUE(report.HasCheck("hypergraph.dangling-node"))
      << report.ToString();
}

TEST(CheckHypergraphTest, StaleStarEntryIsReported) {
  Hypergraph g = SmallDag();
  // Node 3's bstar points at edge 0, which does not produce it.
  HypergraphTestAccess::MutableBstar(g, 3) = {0};
  const AnalysisReport report = CheckHypergraph(g);
  EXPECT_TRUE(report.HasCheck("hypergraph.star-stale"));
  // ... and the rightful entry e1 is now missing.
  EXPECT_TRUE(report.HasCheck("hypergraph.star-missing"));
}

TEST(CheckHypergraphTest, DuplicateStarEntryIsReported) {
  Hypergraph g = SmallDag();
  HypergraphTestAccess::MutableBstar(g, 3) = {1, 1};
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.star-duplicate"));
}

TEST(CheckHypergraphTest, CorruptDeadEdgeIsReported) {
  Hypergraph g = SmallDag();
  const EdgeId extra = g.AddEdge({0}, {3}).ValueOrDie();
  ASSERT_TRUE(g.RemoveEdge(extra).ok());
  HypergraphTestAccess::MutableEdge(g, extra).tail = {0};
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.corrupt-dead-edge"));
}

TEST(CheckHypergraphTest, LiveCountDriftIsReported) {
  Hypergraph g = SmallDag();
  ++HypergraphTestAccess::MutableLiveCount(g);
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.live-count"));
}

TEST(CheckHypergraphTest, EdgeIdDriftIsReported) {
  Hypergraph g = SmallDag();
  HypergraphTestAccess::MutableEdge(g, 0).id = 5;
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.edge-id"));
}

TEST(CheckHypergraphTest, UnsortedEdgeIsReported) {
  Hypergraph g = SmallDag();
  HypergraphTestAccess::MutableEdge(g, 1).tail = {2, 1};
  EXPECT_TRUE(CheckHypergraph(g).HasCheck("hypergraph.unsorted-edge"));
}

// ---------------------------------------------------------------------------
// Plan structure checks

TEST(CheckPlanTest, FeasiblePlanIsClean) {
  const Hypergraph g = SmallDag();
  const std::vector<EdgeId> edges = {0, 1};
  const std::vector<NodeId> targets = {3};
  const std::vector<double> weights = {2.0, 3.0};
  PlanSpec spec;
  spec.graph = &g;
  spec.edges = &edges;
  spec.source = 0;
  spec.targets = &targets;
  spec.edge_weight = &weights;
  spec.claimed_cost = 5.0;
  const AnalysisReport report = CheckPlanStructure(spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.num_warnings(), 0);
}

TEST(CheckPlanTest, InfeasiblePlanReportsUnsatisfiedInputAndMissingTarget) {
  const Hypergraph g = SmallDag();
  const std::vector<EdgeId> edges = {1};  // e1 needs nodes 1,2: nothing
                                          // in the plan produces them
  const std::vector<NodeId> targets = {3};
  PlanSpec spec;
  spec.graph = &g;
  spec.edges = &edges;
  spec.source = 0;
  spec.targets = &targets;
  const AnalysisReport report = CheckPlanStructure(spec);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCheck("plan.unsatisfied-input")) << report.ToString();
  EXPECT_TRUE(report.HasCheck("plan.missing-target"));
}

TEST(CheckPlanTest, DeadAndDuplicateEdgesAreReported) {
  Hypergraph g = SmallDag();
  const EdgeId extra = g.AddEdge({0}, {3}).ValueOrDie();
  ASSERT_TRUE(g.RemoveEdge(extra).ok());
  const std::vector<EdgeId> edges = {0, 0, extra, 42};
  PlanSpec spec;
  spec.graph = &g;
  spec.edges = &edges;
  spec.source = 0;
  const AnalysisReport report = CheckPlanStructure(spec);
  EXPECT_TRUE(report.HasCheck("plan.duplicate-edge"));
  EXPECT_TRUE(report.HasCheck("plan.dead-edge"));
}

TEST(CheckPlanTest, CostMismatchIsReported) {
  const Hypergraph g = SmallDag();
  const std::vector<EdgeId> edges = {0, 1};
  const std::vector<double> weights = {2.0, 3.0};
  PlanSpec spec;
  spec.graph = &g;
  spec.edges = &edges;
  spec.source = 0;
  spec.edge_weight = &weights;
  spec.claimed_cost = 17.0;
  EXPECT_TRUE(CheckPlanStructure(spec).HasCheck("plan.cost-mismatch"));
}

TEST(CheckPlanTest, DuplicateProducerIsAWarningOnly) {
  Hypergraph g = SmallDag();
  g.AddEdge({0}, {2}).ValueOrDie();  // second way to produce node 2
  const std::vector<EdgeId> edges = {0, 1, 2};
  const std::vector<NodeId> targets = {3};
  PlanSpec spec;
  spec.graph = &g;
  spec.edges = &edges;
  spec.source = 0;
  spec.targets = &targets;
  const AnalysisReport report = CheckPlanStructure(spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasCheck("plan.duplicate-producer"));
}

// ---------------------------------------------------------------------------
// Verifier over labelled graphs, plans, histories

// data -> split -> {train, test} -> scaler, mirroring the builder flow so
// canonical names hold by construction.
Result<Pipeline> TinyPipeline() {
  PipelineBuilder builder("tiny");
  HYPPO_ASSIGN_OR_RETURN(NodeId data, builder.LoadDataset("tiny", 200, 4));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_RETURN_NOT_OK(
      builder.Fit("StandardScaler", "skl.StandardScaler", split.first)
          .status());
  return std::move(builder).Build();
}

Augmentation AsAugmentation(const Pipeline& pipeline) {
  Augmentation aug;
  aug.graph = pipeline.graph;
  aug.targets = pipeline.targets;
  const size_t slots =
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots());
  aug.edge_weight.assign(slots, 1.0);
  aug.edge_seconds.assign(slots, 1.0);
  return aug;
}

Plan FullPlan(const Augmentation& aug) {
  Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();
  for (EdgeId e : plan.edges) {
    plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  return plan;
}

TEST(VerifierTest, BuilderPipelineGraphIsClean) {
  const Pipeline pipeline = *TinyPipeline();
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckGraph(pipeline.graph);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifierTest, RenamedArtifactBreaksNameLookup) {
  Pipeline pipeline = *TinyPipeline();
  pipeline.graph.artifact(1).name = "not-the-canonical-name";
  const Verifier verifier;
  EXPECT_TRUE(
      verifier.CheckGraph(pipeline.graph).HasCheck("graph.name-lookup"));
}

TEST(VerifierTest, MalformedLoadTaskIsReported) {
  Pipeline pipeline = *TinyPipeline();
  // Retype a compute task as a load: wrong shape, wrong logical op.
  for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
    if (pipeline.graph.task(e).type == TaskType::kSplit) {
      pipeline.graph.task(e).type = TaskType::kLoad;
    }
  }
  const Verifier verifier;
  EXPECT_TRUE(
      verifier.CheckGraph(pipeline.graph).HasCheck("graph.load-shape"));
}

TEST(VerifierTest, ValidPlanVerifiesAndMinimalityWarnsOnRedundantLoad) {
  const Pipeline pipeline = *TinyPipeline();
  Augmentation aug = AsAugmentation(pipeline);
  const Plan plan = FullPlan(aug);
  Verifier::Options options;
  options.check_minimality = true;
  const Verifier verifier(options);
  {
    const AnalysisReport report = verifier.CheckPlan(aug, plan);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_FALSE(report.HasCheck("plan.redundant-edge"));
  }
  // Add a load edge for the train split and put it in the plan too: the
  // plan stays valid but does redundant work.
  Augmentation padded = aug;
  const NodeId train = padded.targets.empty() ? 2 : padded.targets[0];
  padded.graph.AddLoadTask(train).ValueOrDie();
  const size_t slots =
      static_cast<size_t>(padded.graph.hypergraph().num_edge_slots());
  padded.edge_weight.assign(slots, 1.0);
  padded.edge_seconds.assign(slots, 1.0);
  const Plan padded_plan = FullPlan(padded);
  const AnalysisReport report = verifier.CheckPlan(padded, padded_plan);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.HasCheck("plan.redundant-edge"));
  EXPECT_TRUE(report.HasCheck("plan.duplicate-producer"));
}

// A two-artifact history built through the public API; verifies clean.
History TinyHistory() {
  History history;
  ArtifactInfo raw;
  raw.name = core::SourceArtifactName("ds");
  raw.kind = ArtifactKind::kRaw;
  raw.display = "ds";
  raw.size_bytes = 1000;
  raw.rows = 100;
  raw.cols = 10;
  const NodeId r = history.Observe(raw);
  history.RegisterSourceData(r).ValueOrDie();

  TaskInfo scale;
  scale.logical_op = "StandardScaler";
  scale.type = TaskType::kTransform;
  scale.impl = "skl.StandardScaler";
  ArtifactInfo out;
  out.name = core::TaskOutputNames(scale, {raw.name}, 1)[0];
  out.kind = ArtifactKind::kData;
  out.display = "scaled";
  out.size_bytes = 800;
  const NodeId o = history.Observe(out);
  history.ObserveTask(scale, {r}, {o}, 1.5).ValueOrDie();
  return history;
}

TEST(VerifierTest, TinyHistoryVerifiesCleanIncludingRoundTrip) {
  const History history = TinyHistory();
  const Verifier verifier;
  const AnalysisReport report = verifier.VerifyHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifierTest, NameClosureViolationIsReported) {
  History history = TinyHistory();
  // Derail the derived artifact's lineage hash. This also breaks the
  // name-index bijection; the closure check must fire regardless.
  history.graph().artifact(2).name = "0000000000000000";
  const Verifier verifier;
  const AnalysisReport report = verifier.CheckHistory(history);
  EXPECT_TRUE(report.HasCheck("history.name-closure")) << report.ToString();
}

TEST(VerifierTest, MaterializedFlagWithoutLoadEdgeIsReported) {
  History history = TinyHistory();
  history.record(2).materialized = true;  // no load edge backs this
  const Verifier verifier;
  EXPECT_TRUE(verifier.CheckHistory(history).HasCheck(
      "history.materialized-flag"));
}

TEST(VerifierTest, OrphanLoadEdgeIsReported) {
  History history = TinyHistory();
  ASSERT_TRUE(history.MarkMaterialized(2).ok());
  // Evict by hand, "forgetting" to drop the record's flag bookkeeping.
  history.record(2).load_edge = kInvalidEdge;
  history.record(2).materialized = false;
  const Verifier verifier;
  EXPECT_TRUE(verifier.CheckHistory(history).HasCheck(
      "history.materialized-flag"));
}

TEST(VerifierTest, EvictionKeepsHistoryClean) {
  History history = TinyHistory();
  ASSERT_TRUE(history.MarkMaterialized(2).ok());
  ASSERT_TRUE(history.EvictMaterialized(2).ok());
  const Verifier verifier;
  const AnalysisReport report = verifier.VerifyHistory(history);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifierTest, NegativeStatisticsAreReported) {
  History history = TinyHistory();
  history.record(2).access_count = -3;
  const Verifier verifier;
  EXPECT_TRUE(
      verifier.CheckHistory(history).HasCheck("history.negative-stat"));
}

TEST(VerifierTest, DuplicateTaskSignatureIsReported) {
  History history = TinyHistory();
  // Bypass ObserveTask's dedup map: add a structurally identical task.
  TaskInfo scale;
  scale.logical_op = "StandardScaler";
  scale.type = TaskType::kTransform;
  scale.impl = "skl.StandardScaler";
  history.graph().AddTask(scale, {1}, {2}).ValueOrDie();
  const Verifier verifier;
  EXPECT_TRUE(verifier.CheckHistory(history).HasCheck(
      "history.duplicate-signature"));
}

TEST(VerifierTest, MissingRecordsAreReported) {
  History history = TinyHistory();
  // Nodes added behind the History's back have no statistics record.
  ArtifactInfo extra;
  extra.name = "feedfacefeedface";
  extra.kind = ArtifactKind::kValue;
  history.graph().AddArtifact(extra).ValueOrDie();
  const Verifier verifier;
  EXPECT_TRUE(
      verifier.CheckHistory(history).HasCheck("history.record-count"));
}

TEST(VerifierTest, OverBudgetMaterializationIsReported) {
  History history = TinyHistory();
  ASSERT_TRUE(history.MarkMaterialized(2).ok());  // 800 bytes stored
  const Verifier verifier;
  EXPECT_TRUE(verifier.CheckBudget(history, 1024).ok());
  const AnalysisReport report = verifier.CheckBudget(history, 512);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.HasCheck("budget.exceeded"));
  // A negative budget disables the check.
  EXPECT_TRUE(verifier.CheckBudget(history, -1).ok());
}

TEST(VerifierTest, DictionaryFlagsForeignImplementations) {
  History history = TinyHistory();
  const core::Dictionary dictionary =
      core::Dictionary::FromRegistry(ml::OperatorRegistry::Global());
  const Verifier verifier;
  {
    const AnalysisReport report = verifier.CheckHistory(history, &dictionary);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_FALSE(report.HasCheck("history.unknown-impl"));
  }
  // Claim an implementation the dictionary has never heard of.
  for (EdgeId e : history.graph().hypergraph().LiveEdges()) {
    if (history.graph().task(e).type == TaskType::kTransform) {
      history.graph().task(e).impl = "vendor.MysteryScaler";
    }
  }
  const AnalysisReport report = verifier.CheckHistory(history, &dictionary);
  EXPECT_TRUE(report.HasCheck("history.unknown-impl")) << report.ToString();
  EXPECT_TRUE(report.ok());  // a warning, not an error
}

// ---------------------------------------------------------------------------
// Debug-mode wiring: optimizer and executor honor verify_plans

TEST(VerifyWiringTest, PlanGeneratorVerifiesItsOwnPlans) {
  const Pipeline pipeline = *TinyPipeline();
  const Augmentation aug = AsAugmentation(pipeline);
  core::PlanGenerator generator;
  core::PlanGenerator::Options options;
  options.verify_plans = true;
  const Result<Plan> plan = generator.Optimize(aug, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->edges.empty());
}

TEST(VerifyWiringTest, ExecutorRejectsCorruptPlanBeforeExecuting) {
  const Pipeline pipeline = *TinyPipeline();
  const Augmentation aug = AsAugmentation(pipeline);
  storage::InMemoryArtifactStore store;
  core::Monitor monitor;
  const core::Executor executor(&store, nullptr, &monitor);
  Plan plan = FullPlan(aug);
  plan.cost += 100.0;  // claimed total no longer matches the edges
  core::Executor::Options options;
  options.simulate = true;
  options.verify_plans = true;
  const auto result = executor.Execute(aug, plan, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal()) << result.status();
  // Without the flag the same plan executes (cost totals are advisory).
  options.verify_plans = false;
  EXPECT_TRUE(executor.Execute(aug, plan, options).ok());
}

TEST(VerifyWiringTest, ExecutorRejectsInfeasiblePlan) {
  const Pipeline pipeline = *TinyPipeline();
  const Augmentation aug = AsAugmentation(pipeline);
  Plan plan = FullPlan(aug);
  plan.edges.erase(plan.edges.begin());  // drop the raw load
  plan.cost -= 1.0;
  plan.seconds -= 1.0;
  storage::InMemoryArtifactStore store;
  core::Monitor monitor;
  const core::Executor executor(&store, nullptr, &monitor);
  core::Executor::Options options;
  options.simulate = true;
  options.verify_plans = true;
  const auto result = executor.Execute(aug, plan, options);
  EXPECT_TRUE(result.status().IsInternal()) << result.status();
}

// ---------------------------------------------------------------------------
// End-to-end: real system runs verify clean

TEST(VerifyEndToEndTest, HyppoSystemHistoryVerifiesClean) {
  core::HyppoSystem::Options options;
  options.runtime.storage_budget_bytes = 4ll << 20;
  options.runtime.verify_plans = true;
  core::HyppoSystem system(options);
  auto data = workload::GenerateHiggs(500, 8, /*seed=*/3);
  ASSERT_TRUE(data.ok());
  system.RegisterDataset("higgs", *data);
  const char* code = R"(
data  = load("higgs", rows=500, cols=8)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
scaler = sk.StandardScaler.fit(train)
train_s = scaler.transform(train)
model = sk.DecisionTreeClassifier.fit(train_s, max_depth=4)
)";
  const auto report = system.RunCode(code, "verify-e2e");
  ASSERT_TRUE(report.ok()) << report.status();
  const Verifier verifier;
  const AnalysisReport analysis = verifier.VerifyHistory(
      system.runtime().history(), &system.runtime().dictionary(),
      system.runtime().options().storage_budget_bytes);
  EXPECT_TRUE(analysis.ok()) << analysis.ToString();
}

TEST(VerifyEndToEndTest, IterativeScenarioVerifiesUnderAllMethods) {
  workload::ScenarioConfig config;
  config.num_pipelines = 4;
  config.dataset_multiplier = 0.002;
  ASSERT_TRUE(config.verify);  // scenarios verify by default
  for (const auto& factory :
       {workload::MakeHyppoFactory(), workload::MakeCollabFactory(),
        workload::MakeSharingFactory()}) {
    const auto result = workload::RunIterativeScenario(factory, config);
    EXPECT_TRUE(result.ok()) << result.status();
  }
}

}  // namespace
}  // namespace hyppo::analysis
