#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "hypergraph/algorithms.h"
#include "workload/synthetic_hypergraph.h"

namespace hyppo::core {
namespace {

// Hand-built augmentation helpers ------------------------------------------

ArtifactInfo MakeArtifact(const std::string& name,
                          ArtifactKind kind = ArtifactKind::kData) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.rows = 10;
  info.cols = 2;
  info.size_bytes = 160;
  return info;
}

EdgeId AddTask(Augmentation& aug, const std::string& label,
               std::vector<NodeId> tails, std::vector<NodeId> heads,
               double weight) {
  TaskInfo task;
  task.logical_op = label;
  task.type = TaskType::kTransform;
  task.impl = "synthetic." + label;
  EdgeId e = aug.graph.AddTask(task, std::move(tails), std::move(heads))
                 .ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

EdgeId AddLoad(Augmentation& aug, NodeId node, double weight) {
  EdgeId e = aug.graph.AddLoadTask(node).ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

// The paper's Fig. 1(c) decision: derive v3/v4 via t2, via the equivalent
// t7, or load them; plan Π5 (loads) should win when loads are cheap.
struct Fig1Augmentation {
  Augmentation aug;
  NodeId v1, v2, v3, v4, v5;
  EdgeId load_v1, load_v2, load_v3, load_v4, t2, t7, t3;
};

Fig1Augmentation BuildFig1(double load_cost, double t2_cost,
                           double t7_cost) {
  Fig1Augmentation f;
  f.v1 = f.aug.graph.AddArtifact(MakeArtifact("v1")).ValueOrDie();
  f.v2 = f.aug.graph.AddArtifact(MakeArtifact("v2")).ValueOrDie();
  f.v3 = f.aug.graph.AddArtifact(MakeArtifact("v3")).ValueOrDie();
  f.v4 = f.aug.graph.AddArtifact(MakeArtifact("v4")).ValueOrDie();
  f.v5 = f.aug.graph.AddArtifact(MakeArtifact("v5")).ValueOrDie();
  f.load_v1 = AddLoad(f.aug, f.v1, load_cost);
  f.load_v2 = AddLoad(f.aug, f.v2, load_cost);
  f.load_v3 = AddLoad(f.aug, f.v3, load_cost);
  f.load_v4 = AddLoad(f.aug, f.v4, load_cost);
  f.t2 = AddTask(f.aug, "t2", {f.v1}, {f.v3, f.v4}, t2_cost);
  f.t7 = AddTask(f.aug, "t7", {f.v1}, {f.v3, f.v4}, t7_cost);
  f.t3 = AddTask(f.aug, "t3", {f.v4, f.v2}, {f.v5}, 1.0);
  f.aug.targets = {f.v5, f.v3};
  return f;
}

using Strategy = PlanGenerator::Strategy;

PlanGenerator::Options MakeOptions(Strategy strategy,
                                   bool dominance = false) {
  PlanGenerator::Options options;
  options.strategy = strategy;
  options.dominance_pruning = dominance;
  return options;
}

TEST(OptimizerTest, PrefersLoadsWhenCheap) {
  // Loads cost 0.1 each; computing t2/t7 costs 5. Optimal: load v2, v3,
  // v4 and run t3 => 0.3 + 1.0.
  Fig1Augmentation f = BuildFig1(0.1, 5.0, 5.0);
  PlanGenerator generator;
  auto plan = generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NEAR(plan->cost, 1.3, 1e-12);
  EXPECT_TRUE(IsValidPlan(f.aug.graph.hypergraph(), plan->edges,
                          {f.aug.graph.source()}, f.aug.targets));
  EXPECT_TRUE(IsMinimalPlan(f.aug.graph.hypergraph(), plan->edges,
                            {f.aug.graph.source()}, f.aug.targets));
}

TEST(OptimizerTest, PrefersEquivalentTaskWhenCheaper) {
  // Loads are expensive (10); t7 (the equivalent implementation) costs 1
  // while the user's t2 costs 5: the optimizer should route through t7.
  Fig1Augmentation f = BuildFig1(10.0, 5.0, 1.0);
  PlanGenerator generator;
  auto plan = generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(plan.ok()) << plan.status();
  // v1 load (10) + t7 (1) + v2 load (10) + t3 (1) = 22.
  EXPECT_NEAR(plan->cost, 22.0, 1e-12);
  EXPECT_NE(std::find(plan->edges.begin(), plan->edges.end(), f.t7),
            plan->edges.end());
  EXPECT_EQ(std::find(plan->edges.begin(), plan->edges.end(), f.t2),
            plan->edges.end());
}

TEST(OptimizerTest, MultiHeadEdgeCostCountedOnce) {
  // t2 produces BOTH v3 and v4; requesting both should pay t2 once.
  Fig1Augmentation f = BuildFig1(100.0, 2.0, 50.0);
  f.aug.targets = {f.v3, f.v4};
  // Make v1 loadable cheaply so the derivation is v1 -> t2.
  f.aug.edge_weight[static_cast<size_t>(f.load_v1)] = 1.0;
  PlanGenerator generator;
  auto plan = generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NEAR(plan->cost, 3.0, 1e-12);
  EXPECT_EQ(plan->edges.size(), 2u);
}

TEST(OptimizerTest, AllStrategiesAgreeOnFig1) {
  for (double load : {0.1, 2.0, 10.0}) {
    Fig1Augmentation f = BuildFig1(load, 5.0, 1.5);
    PlanGenerator generator;
    auto stack = generator.Optimize(f.aug, MakeOptions(Strategy::kStack));
    auto priority =
        generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
    auto astar = generator.Optimize(f.aug, MakeOptions(Strategy::kAStar));
    ASSERT_TRUE(stack.ok() && priority.ok() && astar.ok());
    EXPECT_NEAR(stack->cost, priority->cost, 1e-9);
    EXPECT_NEAR(astar->cost, priority->cost, 1e-9);
  }
}

TEST(OptimizerTest, FailsWhenNoDerivationExists) {
  Augmentation aug;
  NodeId orphan = aug.graph.AddArtifact(MakeArtifact("orphan")).ValueOrDie();
  aug.targets = {orphan};
  aug.edge_weight.clear();
  aug.edge_seconds.clear();
  PlanGenerator generator;
  EXPECT_TRUE(generator.Optimize(aug, MakeOptions(Strategy::kPriority))
                  .status()
                  .IsFailedPrecondition());
}

TEST(OptimizerTest, EmptyTargetsRejected) {
  Augmentation aug;
  PlanGenerator generator;
  EXPECT_TRUE(generator.Optimize(aug, MakeOptions(Strategy::kPriority))
                  .status()
                  .IsInvalidArgument());
}

TEST(OptimizerTest, GreedyReturnsValidPlan) {
  Fig1Augmentation f = BuildFig1(0.5, 3.0, 2.0);
  PlanGenerator generator;
  auto greedy = generator.Optimize(f.aug, MakeOptions(Strategy::kGreedy));
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_TRUE(IsValidPlan(f.aug.graph.hypergraph(), greedy->edges,
                          {f.aug.graph.source()}, f.aug.targets));
  auto optimal = generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
  EXPECT_GE(greedy->cost, optimal->cost - 1e-12);
}

TEST(OptimizerTest, ExplorationForcesNewTasks) {
  Fig1Augmentation f = BuildFig1(0.1, 5.0, 5.0);
  // Mark t2 as a new task. With c_exp = 1 the plan must include it even
  // though loading v3/v4 is far cheaper.
  f.aug.new_tasks = {f.t2};
  PlanGenerator generator;
  PlanGenerator::Options explore = MakeOptions(Strategy::kPriority);
  explore.exploration = 1.0;
  auto plan = generator.Optimize(f.aug, explore);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(std::find(plan->edges.begin(), plan->edges.end(), f.t2),
            plan->edges.end());
  // Exploitation mode skips it.
  auto exploit = generator.Optimize(f.aug, MakeOptions(Strategy::kPriority));
  EXPECT_EQ(std::find(exploit->edges.begin(), exploit->edges.end(), f.t2),
            exploit->edges.end());
  EXPECT_GE(plan->cost, exploit->cost);
}

TEST(OptimizerTest, ExplorationKnobScalesWithCexp) {
  Fig1Augmentation f = BuildFig1(0.1, 5.0, 5.0);
  f.aug.new_tasks = {f.t2, f.t7};
  PlanGenerator generator;
  PlanGenerator::Options half = MakeOptions(Strategy::kPriority);
  half.exploration = 0.5;  // mo = ceil(2 * 0.5) = 1: only t2 forced
  auto plan = generator.Optimize(f.aug, half);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(std::find(plan->edges.begin(), plan->edges.end(), f.t2),
            plan->edges.end());
  EXPECT_EQ(std::find(plan->edges.begin(), plan->edges.end(), f.t7),
            plan->edges.end());
}

TEST(OptimizerTest, ExpansionBudgetReported) {
  workload::SyntheticConfig config;
  config.num_artifacts = 16;
  config.alternatives = 3;
  config.seed = 9;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  PlanGenerator generator;
  PlanGenerator::Options options = MakeOptions(Strategy::kStack);
  options.max_expansions = 10;
  EXPECT_TRUE(generator.Optimize(synthetic->aug, options)
                  .status()
                  .IsResourceExhausted());
}

TEST(OptimizerTest, SearchStatsPopulated) {
  Fig1Augmentation f = BuildFig1(1.0, 2.0, 3.0);
  PlanGenerator generator;
  PlanGenerator::SearchStats stats;
  ASSERT_TRUE(
      generator.Optimize(f.aug, MakeOptions(Strategy::kPriority), &stats)
          .ok());
  EXPECT_GT(stats.plans_examined, 0);
  EXPECT_GT(stats.expansions, 0);
}


TEST(OptimizerTest, PerTargetUnionIsValidButCanBeSuboptimal) {
  // Two targets sharing an expensive sub-derivation, each also loadable:
  //   shared(10) -> x(1), y(1); load_x = load_y = 7.
  // Joint optimum computes `shared` once (cost 12 + raw load); per-target
  // plans each prefer their 7-cost load (union 14 + nothing shared).
  Augmentation aug;
  NodeId raw = aug.graph
                   .AddArtifact(MakeArtifact("raw", ArtifactKind::kRaw))
                   .ValueOrDie();
  NodeId shared =
      aug.graph.AddArtifact(MakeArtifact("shared")).ValueOrDie();
  NodeId x = aug.graph.AddArtifact(MakeArtifact("x")).ValueOrDie();
  NodeId y = aug.graph.AddArtifact(MakeArtifact("y")).ValueOrDie();
  AddLoad(aug, raw, 1.0);
  AddTask(aug, "mk_shared", {raw}, {shared}, 10.0);
  AddTask(aug, "mk_x", {shared}, {x}, 1.0);
  AddTask(aug, "mk_y", {shared}, {y}, 1.0);
  AddLoad(aug, x, 7.0);
  AddLoad(aug, y, 7.0);
  aug.targets = {x, y};
  PlanGenerator generator;
  auto joint = generator.Optimize(aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(joint.ok());
  EXPECT_NEAR(joint->cost, 13.0, 1e-9);
  auto per_target =
      generator.OptimizePerTarget(aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(per_target.ok()) << per_target.status();
  EXPECT_NEAR(per_target->cost, 14.0, 1e-9);
  EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), per_target->edges,
                          {aug.graph.source()}, aug.targets));
}

TEST(OptimizerTest, PerTargetMatchesJointOnIndependentTargets) {
  // Disjoint derivations: the union is exactly the joint optimum.
  Augmentation aug;
  NodeId a = aug.graph.AddArtifact(MakeArtifact("a")).ValueOrDie();
  NodeId b = aug.graph.AddArtifact(MakeArtifact("b")).ValueOrDie();
  AddLoad(aug, a, 2.0);
  AddLoad(aug, b, 3.0);
  aug.targets = {a, b};
  PlanGenerator generator;
  auto joint = generator.Optimize(aug, MakeOptions(Strategy::kPriority));
  auto per_target =
      generator.OptimizePerTarget(aug, MakeOptions(Strategy::kPriority));
  ASSERT_TRUE(joint.ok() && per_target.ok());
  EXPECT_NEAR(per_target->cost, joint->cost, 1e-12);
}

// ---------------------------------------------------------------------------
// Property sweep: on random synthetic augmentations every exact strategy
// agrees with the brute-force oracle, and the returned plans are valid
// and minimal. This is the repository's central correctness property.

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, ExactStrategiesMatchBruteForce) {
  workload::SyntheticConfig config;
  config.num_artifacts = 9 + static_cast<int32_t>(GetParam() % 4);
  config.alternatives = 2 + static_cast<int32_t>(GetParam() % 2);
  config.seed = GetParam() * 977 + 13;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok()) << synthetic.status();
  const Augmentation& aug = synthetic->aug;
  PlanGenerator generator;
  auto brute = generator.BruteForce(aug);
  ASSERT_TRUE(brute.ok()) << brute.status();
  for (Strategy strategy :
       {Strategy::kStack, Strategy::kPriority, Strategy::kAStar}) {
    for (bool dominance : {false, true}) {
      auto plan = generator.Optimize(aug, MakeOptions(strategy, dominance));
      ASSERT_TRUE(plan.ok())
          << PlanGenerator::StrategyToString(strategy) << ": "
          << plan.status();
      EXPECT_NEAR(plan->cost, brute->cost, 1e-9)
          << PlanGenerator::StrategyToString(strategy)
          << " dominance=" << dominance;
      EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), plan->edges,
                              {aug.graph.source()}, aug.targets));
      EXPECT_TRUE(IsMinimalPlan(aug.graph.hypergraph(), plan->edges,
                                {aug.graph.source()}, aug.targets));
    }
  }
  // Greedy: feasible, never better than optimal.
  auto greedy = generator.Optimize(aug, MakeOptions(Strategy::kGreedy));
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->cost, brute->cost - 1e-9);
  EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), greedy->edges,
                          {aug.graph.source()}, aug.targets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace hyppo::core
