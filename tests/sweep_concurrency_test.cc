// Concurrency battery for sweep submissions, built to run under
// ThreadSanitizer: many sessions concurrently submitting batch-planned
// sweeps against one shared history/store, with compaction firing
// mid-run, must neither race (batch pinning vs. compaction, seeded
// executions vs. catalog commits) nor corrupt any session's payloads.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/hyppo.h"
#include "serving/session_manager.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/sweep_generator.h"

namespace hyppo {
namespace {

constexpr double kScale = 0.005;

void RegisterSweepDataset(core::Runtime* runtime) {
  const workload::UseCase use_case = workload::UseCase::Higgs();
  runtime->RegisterDatasetGenerator(
      use_case.DatasetId(kScale), [use_case]() {
        return workload::GenerateUseCase(use_case, kScale, 7);
      });
}

serving::ServingOptions BaseOptions() {
  serving::ServingOptions options;
  options.runtime.simulate = false;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.runtime.max_recovery_attempts = 6;
  // Pinned implementations: byte-identity across topologies (see
  // serving_test.cc).
  options.method.augment.use_equivalences = false;
  return options;
}

// Each session sweeps a different region of the model grid (seeded by
// session index), so sessions share the preprocessing trunk but submit
// distinct members — the contended shape.
Result<std::vector<serving::SessionRequest>> MakeSweepRequests(
    int num_sessions, int configs_per_sweep) {
  std::vector<serving::SessionRequest> requests;
  for (int s = 0; s < num_sessions; ++s) {
    workload::SweepGenerator generator(workload::UseCase::Higgs(), kScale,
                                       100 + static_cast<uint64_t>(s));
    workload::PipelineSpec base = generator.DemoBaseSpec();
    std::vector<workload::SweepAxis> axes(1);
    axes[0].stage = workload::SweepAxis::Stage::kModel;
    axes[0].param = "max_depth";
    for (int i = 0; i < configs_per_sweep; ++i) {
      axes[0].values.push_back(std::to_string(2 + configs_per_sweep * s + i));
    }
    workload::SweepOptions options;  // full grid over the one axis
    HYPPO_ASSIGN_OR_RETURN(
        workload::SweepWorkload workload,
        generator.Generate(base, axes, options,
                           "hammer-s" + std::to_string(s)));
    serving::SessionRequest request;
    request.session_id = "sweeper-" + std::to_string(s);
    request.pipelines = std::move(workload.pipelines);
    request.as_sweep = true;
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(SweepConcurrencyTest, ConcurrentSweepSessionsStayConsistent) {
  serving::ServingOptions options = BaseOptions();
  options.max_in_flight_sessions = 4;
  // Tight growth bound: compaction fires while batches are in flight,
  // exercising the pinned-artifact protection under contention.
  options.runtime.history_max_artifacts = 60;
  serving::SessionManager manager(options);
  RegisterSweepDataset(&manager.runtime());

  auto requests = MakeSweepRequests(/*num_sessions=*/6,
                                    /*configs_per_sweep=*/3);
  ASSERT_TRUE(requests.ok()) << requests.status();
  const std::vector<serving::SessionReport> reports =
      manager.RunSessions(*requests);
  ASSERT_EQ(reports.size(), requests->size());
  for (const serving::SessionReport& report : reports) {
    EXPECT_TRUE(report.status.ok())
        << report.session_id << ": " << report.status;
    EXPECT_EQ(report.pipelines_completed, 3) << report.session_id;
    EXPECT_FALSE(report.target_payloads.empty()) << report.session_id;
  }
  // The shared history survived the hammering with invariants intact.
  const analysis::Verifier verifier;
  EXPECT_TRUE(verifier.VerifyHistory(manager.runtime().history()).ok());

  // Every session's payloads match an isolated re-run of the same sweep
  // (batch planning on, no contention): concurrency changed nothing.
  for (size_t s = 0; s < requests->size(); ++s) {
    core::HyppoSystem::Options solo_options;
    solo_options.runtime = BaseOptions().runtime;
    solo_options.method = BaseOptions().method;
    core::HyppoSystem solo(solo_options);
    RegisterSweepDataset(&solo.runtime());
    auto reference = solo.RunBatch((*requests)[s].pipelines);
    ASSERT_TRUE(reference.ok()) << reference.status();
    std::map<std::string, std::string> expected;
    for (const auto& member : reference->reports) {
      for (const auto& [name, payload] : member.target_payloads) {
        auto serialized = storage::SerializePayload(payload);
        ASSERT_TRUE(serialized.ok()) << serialized.status();
        expected[name] = *serialized;
      }
    }
    for (const auto& [name, payload] : reports[s].target_payloads) {
      auto serialized = storage::SerializePayload(payload);
      ASSERT_TRUE(serialized.ok()) << serialized.status();
      auto it = expected.find(name);
      ASSERT_NE(it, expected.end()) << name;
      EXPECT_EQ(*serialized, it->second)
          << "session " << reports[s].session_id << " payload diverged: "
          << name;
    }
  }
}

TEST(SweepConcurrencyTest, MixedSweepAndSequentialSessions) {
  // Sweep submissions interleave with plain sequential sessions over the
  // same catalog; both kinds must complete clean.
  serving::ServingOptions options = BaseOptions();
  options.max_in_flight_sessions = 4;
  serving::SessionManager manager(options);
  RegisterSweepDataset(&manager.runtime());

  auto requests = MakeSweepRequests(/*num_sessions=*/4,
                                    /*configs_per_sweep=*/3);
  ASSERT_TRUE(requests.ok()) << requests.status();
  // Flip half the requests to the sequential path.
  for (size_t s = 0; s < requests->size(); s += 2) {
    (*requests)[s].as_sweep = false;
  }
  const std::vector<serving::SessionReport> reports =
      manager.RunSessions(*requests);
  for (const serving::SessionReport& report : reports) {
    EXPECT_TRUE(report.status.ok())
        << report.session_id << ": " << report.status;
    EXPECT_EQ(report.pipelines_completed, 3) << report.session_id;
  }
  const analysis::Verifier verifier;
  EXPECT_TRUE(verifier.VerifyHistory(manager.runtime().history()).ok());
}

}  // namespace
}  // namespace hyppo
