#include <gtest/gtest.h>

#include <cstdio>
#include <ios>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/antichain.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/object_pool.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace hyppo {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status status = Status::NotFound("missing artifact");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: missing artifact");
}

TEST(StatusTest, AllConstructorsSetMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    HYPPO_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(result.ValueOr(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.ValueOr(3), 3);
}

TEST(ResultTest, AssignOrReturnExtractsValue) {
  auto producer = []() -> Result<int> { return 5; };
  auto consumer = [&]() -> Result<int> {
    HYPPO_ASSIGN_OR_RETURN(int value, producer());
    return value + 1;
  };
  EXPECT_EQ(*consumer(), 6);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto producer = []() -> Result<int> {
    return Status::OutOfRange("bad");
  };
  auto consumer = [&]() -> Result<int> {
    HYPPO_ASSIGN_OR_RETURN(int value, producer());
    return value + 1;
  };
  EXPECT_TRUE(consumer().status().IsOutOfRange());
}

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, DistinctInputsDistinctHashes) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Fnv1a64("key" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, HexIsSixteenLowercaseChars) {
  const std::string hex = HashToHex(0x0123456789abcdefULL);
  EXPECT_EQ(hex, "0123456789abcdef");
  EXPECT_EQ(HashToHex(0).size(), 16u);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    differing += (a.Next() != b.Next()) ? 1 : 0;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double draw = rng.NextDouble();
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hyppo_core", "hyppo"));
  EXPECT_FALSE(StartsWith("hy", "hyppo"));
  EXPECT_TRUE(EndsWith("plan.cc", ".cc"));
  EXPECT_FALSE(EndsWith("plan.cc", ".h"));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatDouble(1.25, 4), "1.25");
  EXPECT_EQ(FormatDouble(3.0, 2), "3");
  EXPECT_EQ(FormatBytes(1536.0), "1.5 KiB");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.5 s");
}

TEST(StringUtilTest, JsonEscapeBasics) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
  EXPECT_EQ(JsonEscape(""), "");
  // Bytes >= 0x20 pass through, including UTF-8 multibyte sequences.
  EXPECT_EQ(JsonEscape("naïve — ünïcode"), "naïve — ünïcode");
}

// Every control character below 0x20 must be escaped — a raw one inside
// a JSON string literal makes the whole document unparseable. The named
// shorthands are used where JSON defines them, \u00XX elsewhere.
TEST(StringUtilTest, JsonEscapeFullControlRange) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = JsonEscape(in);
    // No raw control byte survives.
    for (const char ch : out) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control byte in escape of 0x" << std::hex << c;
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], '\\') << "control 0x" << std::hex << c;
    switch (c) {
      case '\b':
        EXPECT_EQ(out, "\\b");
        break;
      case '\f':
        EXPECT_EQ(out, "\\f");
        break;
      case '\n':
        EXPECT_EQ(out, "\\n");
        break;
      case '\r':
        EXPECT_EQ(out, "\\r");
        break;
      case '\t':
        EXPECT_EQ(out, "\\t");
        break;
      default: {
        char expected[8];
        std::snprintf(expected, sizeof(expected), "\\u%04x", c);
        EXPECT_EQ(out, expected) << "control 0x" << std::hex << c;
      }
    }
  }
  // DEL (0x7f) and high bytes are not control characters JSON requires
  // escaping; they pass through.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_EQ(clock.Now(), 1.5);
  Stopwatch watch(clock);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(watch.Elapsed(), 0.25);
}

TEST(ClockTest, WallClockMonotone) {
  WallClock clock;
  const double t0 = clock.Now();
  const double t1 = clock.Now();
  EXPECT_GE(t1, t0);
}

TEST(ObjectPoolTest, RecyclesReleasedObjects) {
  ObjectPool<std::vector<int>> pool;
  EXPECT_EQ(pool.available(), 0u);
  std::vector<int> v = pool.Acquire();
  v.assign(100, 7);
  const int* data = v.data();
  pool.Release(std::move(v));
  EXPECT_EQ(pool.available(), 1u);
  std::vector<int> reused = pool.Acquire();
  EXPECT_EQ(pool.available(), 0u);
  // The released object's buffer comes back (capacity is retained).
  EXPECT_EQ(reused.data(), data);
  EXPECT_GE(reused.capacity(), 100u);
}

TEST(ObjectPoolTest, AcquireOnEmptyDefaultConstructs) {
  ObjectPool<std::string> pool;
  EXPECT_TRUE(pool.Acquire().empty());
}

TEST(BitsetContainsTest, SubsetSemantics) {
  EXPECT_TRUE(BitsetContains({0b1110, 0b1}, {0b0110, 0b1}));
  EXPECT_TRUE(BitsetContains({0b1110, 0b1}, {0b1110, 0b1}));  // equality
  EXPECT_FALSE(BitsetContains({0b0110, 0b1}, {0b1110, 0b1}));
  EXPECT_FALSE(BitsetContains({0b1110, 0b0}, {0b0010, 0b1}));
  EXPECT_TRUE(BitsetContains({}, {}));  // empty contains empty
}

TEST(AntichainTableTest, SupersetAtLowerCostDominates) {
  ShardedAntichainTable<int> table(4);
  // visited {0,1} at cost 2 dominates visited {0} at cost >= 2.
  EXPECT_TRUE(table.Improve(7, {0b011}, 2.0));
  EXPECT_FALSE(table.Improve(7, {0b001}, 2.0));  // subset, equal cost
  EXPECT_FALSE(table.Improve(7, {0b011}, 3.0));  // equal set, worse cost
  EXPECT_TRUE(table.Improve(7, {0b001}, 1.0));   // subset but cheaper
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.num_keys(), 1);
}

TEST(AntichainTableTest, InsertErasesEntriesItDominates) {
  ShardedAntichainTable<int> table(1);
  EXPECT_TRUE(table.Improve(0, {0b001}, 5.0));
  EXPECT_TRUE(table.Improve(0, {0b010}, 5.0));  // incomparable: coexists
  EXPECT_EQ(table.size(), 2);
  // A superset at lower cost swallows both.
  EXPECT_TRUE(table.Improve(0, {0b011}, 4.0));
  EXPECT_EQ(table.size(), 1);
  EXPECT_DOUBLE_EQ(table.BestDominating(0, {0b001}, 1e18), 4.0);
}

TEST(AntichainTableTest, BestDominatingFindsSupersetsOnly) {
  ShardedAntichainTable<int> table(2);
  EXPECT_TRUE(table.Improve(3, {0b110}, 2.0));
  // {0b010} is a subset of the stored {0b110}: dominated at cost 2.
  EXPECT_DOUBLE_EQ(table.BestDominating(3, {0b010}, 99.0), 2.0);
  // {0b001} is not contained in {0b110}: fallback.
  EXPECT_DOUBLE_EQ(table.BestDominating(3, {0b001}, 99.0), 99.0);
  // Unknown key: fallback.
  EXPECT_DOUBLE_EQ(table.BestDominating(4, {0b010}, 99.0), 99.0);
}

TEST(AntichainTableTest, KeysPartitionTheSpace) {
  // Same bitset and cost under different keys never interact (the
  // optimizer keys by frontier: dominance only holds frontier-to-equal-
  // frontier).
  ShardedAntichainTable<std::string> table(8);
  EXPECT_TRUE(table.Improve("f1", {0b111}, 1.0));
  EXPECT_TRUE(table.Improve("f2", {0b001}, 5.0));
  EXPECT_DOUBLE_EQ(table.BestDominating("f2", {0b001}, 1e18), 5.0);
  EXPECT_EQ(table.num_keys(), 2);
}

TEST(AntichainTableTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedAntichainTable<int>(0).num_shards(), 1);
  EXPECT_EQ(ShardedAntichainTable<int>(3).num_shards(), 4);
  EXPECT_EQ(ShardedAntichainTable<int>(8).num_shards(), 8);
}

// Every key hashes to the same bucket: two distinct keys MUST still keep
// distinct antichains. This is the dominance-soundness regression for
// the optimizer, which once keyed its dominance map on a bare 64-bit
// state signature — a hash collision between two different
// (visited, frontier) states could prune a cheaper optimal plan. The
// sharded table stores full keys, so colliding frontiers stay distinct.
// (Ported from the retired ShardedMinTable, which this structure
// replaced in the optimizer.)
TEST(AntichainTableTest, HashCollisionsDoNotMergeKeys) {
  struct ConstantHash {
    size_t operator()(const std::string&) const { return 42; }
  };
  ShardedAntichainTable<std::string, ConstantHash> table(8);
  EXPECT_TRUE(table.Improve("cheap-frontier", {0b1}, 1.0));
  // Same hash, different key: must not be dominated by "cheap-frontier".
  EXPECT_TRUE(table.Improve("expensive-frontier", {0b1}, 9.0));
  EXPECT_DOUBLE_EQ(table.BestDominating("cheap-frontier", {0b1}, 1e18), 1.0);
  EXPECT_DOUBLE_EQ(table.BestDominating("expensive-frontier", {0b1}, 1e18),
                   9.0);
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.num_keys(), 2);
}

// With a fixed bitset per key the antichain degenerates to min-cost
// semantics: concurrent Improve calls must preserve the global minimum
// each key ever saw (the ShardedMinTable invariant, now on the live
// structure).
TEST(AntichainTableTest, ConcurrentImprovesKeepGlobalMinimum) {
  ShardedAntichainTable<int> table(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t]() {
      for (int i = 0; i < 200; ++i) {
        table.Improve(i % 10, {0b1},
                      static_cast<double>((i + t * 50) % 97));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int key = 0; key < 10; ++key) {
    const double value = table.BestDominating(key, {0b1}, 1e18);
    EXPECT_GE(value, 0.0);
    // No thread ever offered a value above 96.
    EXPECT_LE(value, 96.0);
    // Identical bitsets collapse to the single cheapest entry.
  }
  EXPECT_EQ(table.size(), 10);
}

TEST(AntichainTableTest, ConcurrentImprovesKeepAntichainSound) {
  ShardedAntichainTable<int> table(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, t]() {
      for (int i = 0; i < 400; ++i) {
        const uint64_t bits = 1ull << ((i + t) % 8);
        const double cost = static_cast<double>((i * 13 + t * 7) % 31);
        table.Improve(i % 6, {bits}, cost);
        table.BestDominating(i % 6, {bits}, 1e18);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // The full set at cost 0 dominates everything: each key collapses to
  // one entry, proving insertion kept erasing dominated entries safely.
  for (int key = 0; key < 6; ++key) {
    table.Improve(key, {0xFFull}, 0.0);
    EXPECT_DOUBLE_EQ(table.BestDominating(key, {0x01ull}, 1e18), 0.0);
  }
  EXPECT_EQ(table.size(), 6);
}

TEST(ThreadPoolReentrancyTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  bool seen_inside = false;
  pool.Submit([&pool, &seen_inside]() { seen_inside = pool.InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(seen_inside);
}

// Serial-when-nested policy: Wait from a worker returns immediately
// instead of deadlocking/aborting, and Submit from a worker runs the task
// inline on that worker before returning.
TEST(ThreadPoolNestingTest, WaitFromWorkerReturns) {
  ThreadPool pool(1);
  bool returned = false;
  pool.Submit([&pool, &returned]() {
    pool.Wait();  // must not block on the task that is running it
    returned = true;
  });
  pool.Wait();
  EXPECT_TRUE(returned);
}

TEST(ThreadPoolNestingTest, SubmitFromWorkerRunsInline) {
  ThreadPool pool(1);
  std::thread::id outer_id;
  std::thread::id inner_id;
  bool inner_done_before_outer_returned = false;
  pool.Submit([&]() {
    outer_id = std::this_thread::get_id();
    bool inner_ran = false;
    pool.Submit([&]() {
      inner_id = std::this_thread::get_id();
      inner_ran = true;
    });
    inner_done_before_outer_returned = inner_ran;
  });
  pool.Wait();
  EXPECT_TRUE(inner_done_before_outer_returned);
  EXPECT_EQ(outer_id, inner_id);
}

TEST(ThreadPoolNestingTest, InAnyPoolWorkerDetection) {
  EXPECT_FALSE(ThreadPool::InAnyPoolWorker());
  ThreadPool pool(2);
  bool seen_inside = false;
  pool.Submit([&seen_inside]() { seen_inside = ThreadPool::InAnyPoolWorker(); });
  pool.Wait();
  EXPECT_TRUE(seen_inside);
  EXPECT_FALSE(ThreadPool::InAnyPoolWorker());
}

}  // namespace
}  // namespace hyppo
