// Durable tiered artifact store: disk round trips, crash recovery,
// checksum verification, tiered caching semantics, and the two-session
// reuse path (run -> drop process state -> reopen -> byte-identical
// artifacts within budget).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "analysis/verifier.h"
#include "core/history_io.h"
#include "core/hyppo.h"
#include "storage/disk_store.h"
#include "storage/serialization.h"
#include "storage/tiered_store.h"
#include "workload/datagen.h"
#include "workload/scenario.h"

namespace hyppo {
namespace {

namespace fs = std::filesystem;

using storage::ArtifactPayload;
using storage::DiskArtifactStore;
using storage::TieredArtifactStore;

std::string TempDir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("hyppo_disk_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

ArtifactPayload MakeDatasetPayload(int64_t rows, int64_t cols,
                                   double scale) {
  auto dataset = std::make_shared<ml::Dataset>(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      dataset->at(r, c) = scale * static_cast<double>(r * cols + c);
    }
  }
  return ArtifactPayload(ml::DatasetPtr(dataset));
}

// ---------------------------------------------------------------------------
// DiskArtifactStore basics.

TEST(DiskStoreTest, PutGetEvictAccounting) {
  DiskArtifactStore store(TempDir("basics"));
  ASSERT_TRUE(store.init_status().ok());
  ASSERT_TRUE(store.Put("k", ArtifactPayload(1.5), 100).ok());
  EXPECT_TRUE(store.Contains("k"));
  EXPECT_EQ(store.used_bytes(), 100);
  EXPECT_GT(store.payload_bytes(), 0);
  auto payload = store.Get("k");
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*payload), 1.5);
  // Overwrite adjusts both logical and physical accounting.
  ASSERT_TRUE(store.Put("k", ArtifactPayload(2.0), 40).ok());
  EXPECT_EQ(store.used_bytes(), 40);
  EXPECT_EQ(store.num_entries(), 1u);
  ASSERT_TRUE(store.Evict("k").ok());
  EXPECT_EQ(store.used_bytes(), 0);
  EXPECT_EQ(store.payload_bytes(), 0);
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  EXPECT_TRUE(store.Evict("k").IsNotFound());
}

TEST(DiskStoreTest, LoadMeasuresRealSeconds) {
  DiskArtifactStore store(TempDir("load"));
  ASSERT_TRUE(store.Put("data", MakeDatasetPayload(64, 4, 1.0), 2048).ok());
  auto loaded = store.Load("data");
  ASSERT_TRUE(loaded.ok());
  // Measured wall-clock, not the StorageTier simulation: positive and
  // far below the simulated per-request latency floor would be fine too;
  // all we can assert portably is a sane positive duration.
  EXPECT_GT(loaded->seconds, 0.0);
  EXPECT_LT(loaded->seconds, 10.0);
  const auto* dataset = std::get_if<ml::DatasetPtr>(&loaded->payload);
  ASSERT_NE(dataset, nullptr);
  EXPECT_EQ((*dataset)->rows(), 64);
}

TEST(DiskStoreTest, ReopenRecoversIndex) {
  const std::string dir = TempDir("reopen");
  {
    DiskArtifactStore store(dir);
    ASSERT_TRUE(store.Put("a", ArtifactPayload(1.0), 10).ok());
    ASSERT_TRUE(store.Put("b", MakeDatasetPayload(8, 2, 0.5), 128).ok());
  }  // process "dies": only the directory survives
  DiskArtifactStore reopened(dir);
  ASSERT_TRUE(reopened.init_status().ok());
  EXPECT_EQ(reopened.num_entries(), 2u);
  EXPECT_EQ(reopened.used_bytes(), 138);
  auto b = reopened.Get("b");
  ASSERT_TRUE(b.ok());
  const auto* dataset = std::get_if<ml::DatasetPtr>(&*b);
  ASSERT_NE(dataset, nullptr);
  EXPECT_DOUBLE_EQ((*dataset)->at(3, 1), 0.5 * 7);
}

TEST(DiskStoreTest, ReopenedPayloadsAreByteIdentical) {
  const std::string dir = TempDir("identical");
  const ArtifactPayload original = MakeDatasetPayload(32, 3, 1.25);
  auto expected = storage::SerializePayload(original);
  ASSERT_TRUE(expected.ok());
  {
    DiskArtifactStore store(dir);
    ASSERT_TRUE(store.Put("x", original, 768).ok());
  }
  DiskArtifactStore reopened(dir);
  auto payload = reopened.Get("x");
  ASSERT_TRUE(payload.ok());
  auto actual = storage::SerializePayload(*payload);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, *expected);
}

TEST(DiskStoreTest, CorruptedPayloadDetectedByChecksum) {
  const std::string dir = TempDir("corrupt");
  {
    DiskArtifactStore store(dir);
    ASSERT_TRUE(store.Put("x", MakeDatasetPayload(16, 2, 2.0), 256).ok());
  }
  // Flip one byte in the middle of the payload file.
  for (const auto& entry : fs::directory_iterator(fs::path(dir) /
                                                  "payloads")) {
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const auto size = file.tellg();
    file.seekp(static_cast<std::streamoff>(size) / 2);
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size) / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(size) / 2);
    file.write(&byte, 1);
  }
  DiskArtifactStore reopened(dir);
  ASSERT_TRUE(reopened.init_status().ok());
  // The length still matches, so the entry survives recovery; the
  // checksum catches the corruption at read time with a clean error.
  ASSERT_TRUE(reopened.Contains("x"));
  auto payload = reopened.Get("x");
  EXPECT_FALSE(payload.ok());
  EXPECT_TRUE(payload.status().IsIoError() ||
              payload.status().IsParseError());
}

TEST(DiskStoreTest, RecoveryDropsTornEntriesAndOrphans) {
  const std::string dir = TempDir("recovery");
  {
    DiskArtifactStore store(dir);
    ASSERT_TRUE(store.Put("keep", ArtifactPayload(3.0), 12).ok());
    ASSERT_TRUE(store.Put("torn", ArtifactPayload(4.0), 12).ok());
  }
  // Simulate a crash aftermath: truncate one payload (its manifest entry
  // records more bytes than the file holds), add an orphan file the
  // manifest does not know, and a stale tmp file. Safe keys map to
  // deterministic file names (<key>.bin).
  fs::path payloads = fs::path(dir) / "payloads";
  ASSERT_TRUE(fs::exists(payloads / "torn.bin"));
  {
    std::ofstream trunc(payloads / "torn.bin",
                        std::ios::binary | std::ios::trunc);
    trunc << "xx";
  }
  std::ofstream(payloads / "orphan.bin", std::ios::binary) << "junk";
  std::ofstream(fs::path(dir) / "store.manifest.tmp", std::ios::binary)
      << "partial";

  DiskArtifactStore recovered(dir);
  ASSERT_TRUE(recovered.init_status().ok());
  EXPECT_TRUE(recovered.Contains("keep"));
  EXPECT_FALSE(recovered.Contains("torn"));  // wrong length -> dropped
  EXPECT_EQ(recovered.used_bytes(), 12);
  EXPECT_FALSE(fs::exists(payloads / "orphan.bin"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "store.manifest.tmp"));
  auto keep = recovered.Get("keep");
  ASSERT_TRUE(keep.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*keep), 3.0);
}

TEST(DiskStoreTest, UnsafeKeysGetHashedFileNames) {
  const std::string dir = TempDir("unsafe");
  const std::string key = "../weird key/with:stuff";
  {
    DiskArtifactStore store(dir);
    ASSERT_TRUE(store.Put(key, ArtifactPayload(9.0), 8).ok());
    // The payload file must live inside payloads/, never escape via "..".
    size_t files = 0;
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir) / "payloads")) {
      ++files;
      EXPECT_EQ(entry.path().extension(), ".bin");
    }
    EXPECT_EQ(files, 1u);
  }
  DiskArtifactStore reopened(dir);
  auto payload = reopened.Get(key);
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*payload), 9.0);
}

// ---------------------------------------------------------------------------
// TieredArtifactStore.

TEST(TieredStoreTest, BackIsAuthoritativeFrontCaches) {
  const std::string dir = TempDir("tiered");
  TieredArtifactStore store(std::make_unique<DiskArtifactStore>(dir));
  ASSERT_TRUE(store.Put("k", ArtifactPayload(7.5), 64).ok());
  EXPECT_EQ(store.num_entries(), 1u);
  EXPECT_EQ(store.used_bytes(), 64);
  EXPECT_EQ(store.front_entries(), 1u);
  // Exclusive ownership: while the back store is live, a second store
  // over the same directory must refuse to open (store.lock is held)
  // rather than race the owner's manifest.
  {
    DiskArtifactStore contender(dir);
    EXPECT_FALSE(contender.init_status().ok());
    EXPECT_TRUE(contender.init_status().IsFailedPrecondition())
        << contender.init_status();
    EXPECT_NE(contender.init_status().ToString().find("locked"),
              std::string::npos)
        << contender.init_status();
  }

  // Front hits are charged at the memory tier (effectively free), and
  // the payload matches.
  auto loaded = store.Load("k");
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(loaded->payload), 7.5);

  ASSERT_TRUE(store.Evict("k").ok());
  EXPECT_EQ(store.front_entries(), 0u);
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_TRUE(store.Load("k").status().IsNotFound());
}

TEST(TieredStoreTest, DirectoryLockReleasedWithOwner) {
  const std::string dir = TempDir("lockcycle");
  {
    DiskArtifactStore owner(dir);
    ASSERT_TRUE(owner.init_status().ok()) << owner.init_status();
    ASSERT_TRUE(owner.Put("k", ArtifactPayload(1.25), 8).ok());
  }
  // Owner destroyed: the durable entry is visible to the next opener.
  DiskArtifactStore reopened(dir);
  ASSERT_TRUE(reopened.init_status().ok()) << reopened.init_status();
  EXPECT_TRUE(reopened.Contains("k"));
}

TEST(TieredStoreTest, LoadPromotesBackHitsIntoFront) {
  const std::string dir = TempDir("promote");
  {
    DiskArtifactStore seed(dir);
    ASSERT_TRUE(seed.Put("cold", ArtifactPayload(2.25), 32).ok());
  }
  TieredArtifactStore store(std::make_unique<DiskArtifactStore>(dir));
  EXPECT_EQ(store.front_entries(), 0u);  // reopened: cache is cold
  EXPECT_TRUE(store.Contains("cold"));
  auto first = store.Load("cold");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(store.front_entries(), 1u);  // promoted
  auto second = store.Load("cold");
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(second->payload), 2.25);
}

TEST(TieredStoreTest, FailedBackPutDoesNotPopulateFront) {
  // A back store whose directory is an unwritable path: init fails, Puts
  // are rejected, and the tiered front must not cache the lost payload.
  auto back = std::make_unique<DiskArtifactStore>("/proc/hyppo-no-store");
  ASSERT_FALSE(back->init_status().ok());
  TieredArtifactStore store(std::move(back));
  EXPECT_FALSE(store.Put("k", ArtifactPayload(1.0), 8).ok());
  EXPECT_EQ(store.front_entries(), 0u);
  EXPECT_FALSE(store.Contains("k"));
}

// ---------------------------------------------------------------------------
// Two-session scenario reuse: the ISSUE's acceptance criterion.

TEST(DurableSessionTest, ScenarioReusesArtifactsAcrossSessions) {
  const std::string dir = TempDir("scenario");
  workload::ScenarioConfig config;
  config.use_case = workload::UseCase::Higgs();
  config.num_pipelines = 6;
  config.budget_factor = 0.5;
  config.dataset_multiplier = 0.005;
  config.seed = 11;
  config.simulate = true;
  config.store_dir = dir;
  auto first = RunIterativeScenario(workload::MakeHyppoFactory(), config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->stored_artifacts, 0);

  // Session 2: same directory, fresh process state. The restored store
  // must satisfy the history<->store consistency check and stay within
  // budget; the pipelines re-run strictly faster thanks to reuse.
  auto second = RunIterativeScenario(workload::MakeHyppoFactory(), config);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->stored_artifacts, 0);
  EXPECT_LT(second->cumulative_seconds, first->cumulative_seconds);

  // Reopen once more and audit directly: every materialized artifact is
  // present with a matching charged size, within budget on disk.
  core::RuntimeOptions options;
  options.storage_budget_bytes = first->budget_bytes;
  options.store_dir = dir;
  core::Runtime runtime(options);
  ASSERT_TRUE(runtime.session_status().ok());
  EXPECT_GT(runtime.history().MaterializedArtifacts().size(), 0u);
  EXPECT_LE(runtime.store().used_bytes(), first->budget_bytes);
  const analysis::Verifier verifier;
  const analysis::AnalysisReport report =
      verifier.CheckStoreConsistency(runtime.history(), runtime.store());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(DurableSessionTest, QuickstartStyleSystemReload) {
  const std::string dir = TempDir("system");
  const char* code = R"(
data    = load("tiny", rows=64, cols=4)
train, test = sk.TrainTestSplit.split(data, test_size=0.25)
scaler  = sk.StandardScaler.fit(train)
train_s = scaler.transform(train)
model   = sk.DecisionTreeClassifier.fit(train_s, max_depth=3)
)";
  std::string stored_key;
  std::string expected_bytes;
  {
    core::HyppoSystem::Options options;
    options.runtime.storage_budget_bytes = 1 << 20;
    options.runtime.store_dir = dir;
    core::HyppoSystem system(options);
    ASSERT_TRUE(system.runtime().session_status().ok());
    auto data = workload::GenerateHiggs(64, 4, 7);
    ASSERT_TRUE(data.ok());
    system.RegisterDataset("tiny", *data);
    auto report = system.RunCode(code, "session-1");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const auto materialized =
        system.runtime().history().MaterializedArtifacts();
    ASSERT_FALSE(materialized.empty());
    stored_key =
        system.runtime().history().graph().artifact(materialized[0]).name;
    auto payload = system.runtime().store().Get(stored_key);
    ASSERT_TRUE(payload.ok());
    auto bytes = storage::SerializePayload(*payload);
    ASSERT_TRUE(bytes.ok());
    expected_bytes = *bytes;
  }
  // Session 2: artifacts come back byte-identical.
  core::HyppoSystem::Options options;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.runtime.store_dir = dir;
  core::HyppoSystem system(options);
  ASSERT_TRUE(system.runtime().session_status().ok());
  EXPECT_GT(system.runtime().history().MaterializedArtifacts().size(), 0u);
  auto payload = system.runtime().store().Get(stored_key);
  ASSERT_TRUE(payload.ok());
  auto bytes = storage::SerializePayload(*payload);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, expected_bytes);
}

TEST(DurableSessionTest, DriftedStoreEntryReconciledOnRestore) {
  const std::string dir = TempDir("drift");
  workload::ScenarioConfig config;
  config.use_case = workload::UseCase::Higgs();
  config.num_pipelines = 4;
  config.budget_factor = 0.5;
  config.dataset_multiplier = 0.005;
  config.seed = 5;
  config.simulate = true;
  config.store_dir = dir;
  auto first = RunIterativeScenario(workload::MakeHyppoFactory(), config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_GT(first->stored_artifacts, 0);
  // Sabotage one payload file (truncate) between sessions: the reopened
  // runtime must reconcile — the damaged artifact is evicted from both
  // history and store, and the consistency check still passes.
  fs::path payloads = fs::path(dir) / "payloads";
  bool truncated = false;
  for (const auto& entry : fs::directory_iterator(payloads)) {
    std::ofstream trunc(entry.path(), std::ios::binary | std::ios::trunc);
    trunc << "z";
    truncated = true;
    break;
  }
  ASSERT_TRUE(truncated);
  core::RuntimeOptions options;
  options.storage_budget_bytes = first->budget_bytes;
  options.store_dir = dir;
  core::Runtime runtime(options);
  ASSERT_TRUE(runtime.session_status().ok());
  EXPECT_LT(
      static_cast<int64_t>(runtime.history().MaterializedArtifacts().size()),
      first->stored_artifacts);
  const analysis::Verifier verifier;
  const analysis::AnalysisReport report =
      verifier.CheckStoreConsistency(runtime.history(), runtime.store());
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace hyppo
