#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/pipeline_builder.h"
#include "storage/fault_injection.h"
#include "workload/datagen.h"

namespace hyppo {
namespace {

using storage::ArtifactPayload;

// ---------------------------------------------------------------------------
// TSan regression tests: the artifact store and the fault injector are
// shared mutable state under the parallel executor's worker threads.
// These tests hammer them from raw threads and from real executor
// workers; they pass trivially without a race detector and exist to keep
// the TSan job honest.

TEST(StorageConcurrencyTest, ConcurrentMixedOperationsAreSafe) {
  storage::InMemoryArtifactStore store;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<int> put_failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &put_failures, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "artifact-" + std::to_string((t * 7 + i) % 32);
        switch (i % 6) {
          case 0:
            if (!store.Put(key, ArtifactPayload(static_cast<double>(i)),
                           64 + i)
                     .ok()) {
              put_failures.fetch_add(1);
            }
            break;
          case 1:
            (void)store.Get(key);
            break;
          case 2:
            (void)store.Contains(key);
            break;
          case 3:
            (void)store.Evict(key);
            break;
          case 4:
            (void)store.Load(key);
            break;
          default: {
            (void)store.Keys();
            (void)store.used_bytes();
            (void)store.num_entries();
            (void)store.SizeOf(key);
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(put_failures.load(), 0);
  // The store is still internally consistent: every surviving key
  // resolves, and the byte tally matches a fresh walk.
  int64_t walked = 0;
  for (const std::string& key : store.Keys()) {
    auto size = store.SizeOf(key);
    ASSERT_TRUE(size.ok()) << size.status();
    walked += *size;
  }
  EXPECT_EQ(walked, store.used_bytes());
}

TEST(StorageConcurrencyTest, FaultInjectorDecisionsAreSafeAndCounted) {
  storage::FaultPlan plan;
  plan.seed = 21;
  plan.compute_failure_rate = 1.0;
  plan.max_faults_per_key = 0;  // every decision injects
  storage::FaultInjector injector(plan);
  constexpr int kThreads = 8;
  constexpr int kDecisionsPerThread = 500;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&injector, t]() {
      for (int i = 0; i < kDecisionsPerThread; ++i) {
        (void)injector.Decide(storage::FaultSite::kCompute,
                              "op-" + std::to_string((t + i) % 16));
      }
    });
  }
  pool.Wait();
  // No decision was lost or double-counted under contention.
  EXPECT_EQ(injector.counters().injected_compute,
            kThreads * kDecisionsPerThread);
}

TEST(StorageConcurrencyTest, FaultInjectingStoreConcurrentLoads) {
  storage::InMemoryArtifactStore base;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(base.Put("k" + std::to_string(i),
                         ArtifactPayload(static_cast<double>(i)), 128)
                    .ok());
  }
  storage::FaultInjector injector(storage::FaultPlan::Uniform(5, 0.3));
  storage::FaultInjectingStore store(&base, &injector);
  ThreadPool pool(8);
  std::atomic<int> unexpected{0};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&store, &unexpected, t]() {
      for (int i = 0; i < 300; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 16);
        auto loaded = store.Load(key);
        // Loads either succeed (possibly corrupted/slow) or report an
        // injected NotFound; any other status is a bug.
        if (!loaded.ok() && !loaded.status().IsNotFound()) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(base.num_entries(), 16u);
}

// The real contention path: parallel executor workers loading from and
// writing into one store while a sibling executor does the same.
TEST(StorageConcurrencyTest, ParallelExecutorsShareOneStore) {
  core::PipelineBuilder builder("hammer");
  NodeId data = *builder.LoadDataset("hammer-unit", 400, 6);
  auto split = *builder.Split(data);
  NodeId scaler =
      *builder.Fit("StandardScaler", "skl.StandardScaler", split.first);
  NodeId train_s = *builder.Transform(scaler, split.first);
  NodeId test_s = *builder.Transform(scaler, split.second);
  ml::Config tree;
  tree.SetInt("max_depth", 4);
  NodeId model = *builder.Fit("DecisionTreeClassifier",
                              "skl.DecisionTreeClassifier", train_s, tree);
  NodeId preds = *builder.Predict(model, test_s);
  *builder.Evaluate(preds, test_s, "accuracy");
  core::Pipeline pipeline = *std::move(builder).Build();

  core::Augmentation aug;
  aug.graph = pipeline.graph;
  aug.targets = pipeline.targets;
  const size_t slots =
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots());
  aug.edge_weight.assign(slots, 1.0);
  aug.edge_seconds.assign(slots, 1.0);
  core::Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();

  // A load-only augmentation over materialized artifacts: its executor's
  // workers hit ArtifactStore::Load concurrently.
  storage::InMemoryArtifactStore store;
  core::Augmentation loads;
  for (int i = 0; i < 12; ++i) {
    core::ArtifactInfo info;
    info.name = "mat-" + std::to_string(i);
    info.display = info.name;
    info.kind = core::ArtifactKind::kData;
    info.size_bytes = 256;
    NodeId node = loads.graph.AddArtifact(info).ValueOrDie();
    loads.graph.AddLoadTask(node).ValueOrDie();
    loads.targets.push_back(node);
    ASSERT_TRUE(store
                    .Put(info.name, ArtifactPayload(static_cast<double>(i)),
                         info.size_bytes)
                    .ok());
  }
  const size_t load_slots =
      static_cast<size_t>(loads.graph.hypergraph().num_edge_slots());
  loads.edge_weight.assign(load_slots, 1.0);
  loads.edge_seconds.assign(load_slots, 1.0);
  core::Plan load_plan;
  load_plan.edges = loads.graph.hypergraph().LiveEdges();

  core::DatasetResolver resolver =
      [](const std::string&) -> Result<ml::DatasetPtr> {
    return workload::GenerateHiggs(400, 6, 11);
  };
  // Two executors over the same store, each with 4 workers: one runs the
  // compute pipeline, one hammers the load path, and a churn thread
  // mutates overlapping keys the whole time.
  core::Monitor monitor_a;
  core::Monitor monitor_b;
  core::Executor executor_a(&store, resolver, &monitor_a);
  core::Executor executor_b(&store, resolver, &monitor_b);
  std::atomic<bool> stop{false};
  std::thread churn([&store, &stop]() {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "churn-" + std::to_string(i++ % 8);
      (void)store.Put(key, ArtifactPayload(1.0), 64);
      (void)store.Keys();
      (void)store.Evict(key);
    }
  });
  std::atomic<int> failures{0};
  std::thread runner_a([&]() {
    for (int i = 0; i < 3; ++i) {
      core::Executor::Options options;
      options.parallelism = 4;
      auto result = executor_a.Execute(aug, plan, options);
      if (!result.ok() || !result->complete()) {
        failures.fetch_add(1);
      }
    }
  });
  std::thread runner_b([&]() {
    for (int i = 0; i < 8; ++i) {
      core::Executor::Options options;
      options.parallelism = 4;
      auto result = executor_b.Execute(loads, load_plan, options);
      if (!result.ok() || !result->complete()) {
        failures.fetch_add(1);
      }
    }
  });
  runner_a.join();
  runner_b.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(monitor_a.num_task_records(), 0);
  EXPECT_EQ(monitor_b.num_task_records(), 8 * 12);
}

}  // namespace
}  // namespace hyppo
