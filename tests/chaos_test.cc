#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "serving/session_manager.h"
#include "storage/fault_injection.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/scenario.h"

namespace hyppo {
namespace {

using storage::ArtifactPayload;

// ---------------------------------------------------------------------------
// FaultInjector unit behavior: determinism, transient cap, schedules.

TEST(FaultInjectorTest, DecisionsAreDeterministicPerOccurrence) {
  storage::FaultPlan plan = storage::FaultPlan::Uniform(7, 0.5);
  storage::FaultInjector a(plan);
  storage::FaultInjector b(plan);
  for (int i = 0; i < 50; ++i) {
    auto da = a.Decide(storage::FaultSite::kStoreLoad, "artifact-x");
    auto db = b.Decide(storage::FaultSite::kStoreLoad, "artifact-x");
    EXPECT_EQ(da.kind, db.kind) << "occurrence " << i;
  }
  EXPECT_EQ(a.counters().total(), b.counters().total());
}

TEST(FaultInjectorTest, DecisionIndependentOfOtherKeys) {
  // The draw hashes (seed, site, key, occurrence): interleaving other
  // keys between the draws must not change the sequence for one key.
  storage::FaultPlan plan = storage::FaultPlan::Uniform(11, 0.4);
  plan.max_faults_per_key = 0;  // unlimited, compare raw draws
  storage::FaultInjector lone(plan);
  storage::FaultInjector noisy(plan);
  std::vector<storage::FaultKind> a;
  std::vector<storage::FaultKind> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(lone.Decide(storage::FaultSite::kCompute, "fit").kind);
    (void)noisy.Decide(storage::FaultSite::kStoreLoad, "other-1");
    (void)noisy.Decide(storage::FaultSite::kResolver, "other-2");
    b.push_back(noisy.Decide(storage::FaultSite::kCompute, "fit").kind);
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, TransientCapBoundsFaultsPerKey) {
  storage::FaultPlan plan;
  plan.seed = 3;
  plan.compute_failure_rate = 1.0;  // every draw wants to fail
  plan.max_faults_per_key = 2;
  storage::FaultInjector injector(plan);
  int injected = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.Decide(storage::FaultSite::kCompute, "op").kind !=
        storage::FaultKind::kNone) {
      ++injected;
    }
  }
  EXPECT_EQ(injected, 2);
  EXPECT_EQ(injector.counters().injected_compute, 2);
}

TEST(FaultInjectorTest, ScheduleOverridesProbabilisticDraw) {
  storage::FaultPlan plan;  // all rates zero
  plan.schedule.push_back({storage::FaultSite::kStoreLoad, "scaler-state",
                           /*occurrence=*/1, storage::FaultKind::kCorrupt});
  storage::FaultInjector injector(plan);
  EXPECT_EQ(injector.Decide(storage::FaultSite::kStoreLoad, "scaler-state")
                .kind,
            storage::FaultKind::kNone);
  EXPECT_EQ(injector.Decide(storage::FaultSite::kStoreLoad, "scaler-state")
                .kind,
            storage::FaultKind::kCorrupt);
  EXPECT_EQ(injector.Decide(storage::FaultSite::kStoreLoad, "scaler-state")
                .kind,
            storage::FaultKind::kNone);
}

TEST(FaultInjectingStoreTest, InjectsNotFoundCorruptAndSlowLoads) {
  storage::InMemoryArtifactStore base;
  ASSERT_TRUE(base.Put("a", ArtifactPayload(1.5), 1 << 16).ok());
  storage::FaultPlan plan;
  plan.schedule.push_back(
      {storage::FaultSite::kStoreLoad, "a", 0, storage::FaultKind::kNotFound});
  plan.schedule.push_back(
      {storage::FaultSite::kStoreLoad, "a", 1, storage::FaultKind::kCorrupt});
  plan.schedule.push_back(
      {storage::FaultSite::kStoreLoad, "a", 2, storage::FaultKind::kSlowLoad});
  plan.slow_multiplier = 4.0;
  storage::FaultInjector injector(plan);
  storage::FaultInjectingStore store(&base, &injector);

  // Load charges by the payload's actual byte size (8 for a scalar).
  const double clean_seconds =
      base.LoadSeconds(storage::PayloadSizeBytes(ArtifactPayload(1.5)));
  EXPECT_TRUE(store.Load("a").status().IsNotFound());
  auto corrupt = store.Load("a");
  ASSERT_TRUE(corrupt.ok()) << corrupt.status();
  EXPECT_NE(std::get_if<std::monostate>(&corrupt->payload), nullptr);
  auto slow = store.Load("a");
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_NEAR(slow->seconds, 4.0 * clean_seconds, 1e-12);
  auto clean = store.Load("a");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_NEAR(clean->seconds, clean_seconds, 1e-12);
  EXPECT_DOUBLE_EQ(std::get<double>(clean->payload), 1.5);
  // Bookkeeping entry points bypass injection entirely.
  EXPECT_TRUE(store.Contains("a"));
  EXPECT_TRUE(store.Get("a").ok());
  EXPECT_EQ(injector.counters().total(), 3);
}

// ---------------------------------------------------------------------------
// End-to-end chaos: an exploratory sequence under HYPPO, with faults
// injected at every site, must self-heal and produce payloads that are
// byte-identical to the fault-free run.

// The i-th pipeline of a small exploratory sequence: shared
// imputer+scaler preprocessing, varying model stage. Later iterations
// reuse/load materialized prefix artifacts, which is exactly where the
// store-load faults strike. Implementations are pinned (equivalences off
// below) so every run derives bitwise-identical payloads.
Result<core::Pipeline> SequencePipeline(int i) {
  core::PipelineBuilder builder("chaos-" + std::to_string(i));
  HYPPO_ASSIGN_OR_RETURN(NodeId data,
                         builder.LoadDataset("chaos-unit", 160, 5));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  ml::Config impute;
  impute.Set("strategy", "mean");
  HYPPO_ASSIGN_OR_RETURN(
      NodeId imputer,
      builder.Fit("SimpleImputer", "skl.SimpleImputer", split.first, impute));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_i,
                         builder.Transform(imputer, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_i,
                         builder.Transform(imputer, split.second));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s, builder.Transform(scaler, train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s, builder.Transform(scaler, test_i));
  ml::Config model_config;
  NodeId model = kInvalidNode;
  if (i % 2 == 0) {
    model_config.SetInt("max_depth", 3 + i);
    HYPPO_ASSIGN_OR_RETURN(
        model, builder.Fit("DecisionTreeClassifier",
                           "skl.DecisionTreeClassifier", train_s,
                           model_config));
  } else {
    model_config.SetDouble("alpha", 0.001 * (i + 1));
    HYPPO_ASSIGN_OR_RETURN(
        model, builder.Fit("LogisticRegression", "skl.LogisticRegression",
                           train_s, model_config));
  }
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(
      builder.Evaluate(preds, test_s, i % 2 == 0 ? "accuracy" : "f1")
          .status());
  return std::move(builder).Build();
}

struct SequenceOutcome {
  /// Serialized bytes of every target payload, by canonical name.
  std::map<std::string, std::string> payload_bytes;
  int64_t replans = 0;
  int64_t failed_tasks = 0;
  int64_t recovered_tasks = 0;
  int64_t injected_faults = 0;
};

constexpr int kSequenceLength = 4;

Result<SequenceOutcome> RunSequence(double fault_rate, int parallelism,
                                    uint64_t fault_seed) {
  core::HyppoSystem::Options options;
  options.runtime.simulate = false;
  options.runtime.parallelism = parallelism;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  // The transient cap (max_faults_per_key=2) clears each fault after two
  // injections, but a task starved by an upstream fault is first
  // exercised (and so can first fault) only after the upstream clears:
  // a failing chain of depth d can need up to 2d attempts. Give the
  // sweep headroom over the default bound of 3.
  options.runtime.max_recovery_attempts = 6;
  // Pin physical implementations: alternative impls (e.g. two-pass vs
  // Welford scaler moments) are numerically equivalent but not
  // bit-identical, and this test asserts byte equality across runs.
  options.method.augment.use_equivalences = false;
  core::HyppoSystem system(options);
  system.runtime().RegisterDatasetGenerator("chaos-unit", []() {
    return workload::GenerateHiggs(160, 5, 7);
  });
  if (fault_rate > 0.0) {
    system.runtime().EnableFaultInjection(
        storage::FaultPlan::Uniform(fault_seed, fault_rate));
  }
  SequenceOutcome outcome;
  for (int i = 0; i < kSequenceLength; ++i) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, SequencePipeline(i));
    HYPPO_ASSIGN_OR_RETURN(core::HyppoSystem::RunReport report,
                           system.RunPipeline(pipeline));
    for (const auto& [name, payload] : report.target_payloads) {
      HYPPO_ASSIGN_OR_RETURN(std::string bytes,
                             storage::SerializePayload(payload));
      outcome.payload_bytes[name] = std::move(bytes);
    }
  }
  const core::Monitor& monitor = system.runtime().monitor();
  outcome.replans = monitor.num_replans();
  outcome.failed_tasks = monitor.num_task_failures();
  outcome.recovered_tasks = monitor.num_recovered_tasks();
  outcome.injected_faults = monitor.num_injected_faults();
  return outcome;
}

TEST(ChaosTest, SeededSweepRecoversAndMatchesFaultFreeRun) {
  for (int parallelism : {1, 8}) {
    // Fault rate 0: the plan seed is irrelevant (no injector is armed),
    // so one run covers the whole seed axis of the sweep.
    auto baseline = RunSequence(0.0, parallelism, 1);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    EXPECT_EQ(baseline->replans, 0);
    EXPECT_EQ(baseline->failed_tasks, 0);
    EXPECT_EQ(baseline->injected_faults, 0);
    ASSERT_FALSE(baseline->payload_bytes.empty());

    int64_t swept_faults = 0;
    for (double fault_rate : {0.05, 0.2}) {
      for (uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                     " rate=" + std::to_string(fault_rate) +
                     " seed=" + std::to_string(seed));
        auto chaotic = RunSequence(fault_rate, parallelism, seed);
        // Recovery must terminate inside the retry bound: the transient
        // cap (max_faults_per_key=2) is below max_recovery_attempts, so
        // every execution converges and the sequence succeeds.
        ASSERT_TRUE(chaotic.ok()) << chaotic.status();
        EXPECT_LE(chaotic->replans, 6 * kSequenceLength);
        EXPECT_GE(chaotic->failed_tasks, chaotic->replans);
        swept_faults += chaotic->injected_faults;
        // Self-healing is exact: every target payload is byte-identical
        // to the fault-free run.
        EXPECT_EQ(chaotic->payload_bytes, baseline->payload_bytes);
      }
    }
    // The sweep actually exercised the fault paths.
    EXPECT_GT(swept_faults, 0);
  }
}

TEST(ChaosTest, ScheduledCorruptionDegradesAndReplans) {
  // Script one exact failure: the first materialized-artifact load a
  // later pipeline attempts comes back corrupt. The runtime must evict
  // the rotten copy, drop the load edge, re-plan, and recompute.
  auto baseline = RunSequence(0.0, 1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  core::HyppoSystem::Options options;
  options.runtime.simulate = false;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.method.augment.use_equivalences = false;
  core::HyppoSystem system(options);
  system.runtime().RegisterDatasetGenerator("chaos-unit", []() {
    return workload::GenerateHiggs(160, 5, 7);
  });
  auto first = SequencePipeline(0);
  ASSERT_TRUE(first.ok()) << first.status();
  auto first_report = system.RunPipeline(*first);
  ASSERT_TRUE(first_report.ok()) << first_report.status();

  // Corrupt every store load of the second pipeline's first attempt.
  storage::FaultPlan plan;
  for (const std::string& key : system.runtime().store().Keys()) {
    plan.schedule.push_back(
        {storage::FaultSite::kStoreLoad, key, 0, storage::FaultKind::kCorrupt});
  }
  ASSERT_FALSE(plan.schedule.empty())
      << "first pipeline materialized nothing; test premise broken";
  system.runtime().EnableFaultInjection(plan);

  auto second = SequencePipeline(1);
  ASSERT_TRUE(second.ok()) << second.status();
  auto report = system.RunPipeline(*second);
  ASSERT_TRUE(report.ok()) << report.status();
  const core::Monitor& monitor = system.runtime().monitor();
  EXPECT_GE(monitor.num_replans(), 1);
  EXPECT_GE(monitor.num_task_failures(), 1);
  // The recomputed target matches the fault-free sequence byte-for-byte.
  for (const auto& [name, payload] : report->target_payloads) {
    auto bytes = storage::SerializePayload(payload);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto it = baseline->payload_bytes.find(name);
    ASSERT_NE(it, baseline->payload_bytes.end()) << name;
    EXPECT_EQ(*bytes, it->second) << name;
  }
}

TEST(ChaosTest, FailureWithoutReplannerSurfacesFirstError) {
  // ExecuteAndRecord without a replanner keeps the old contract: the
  // first task failure's Status comes back to the caller.
  core::RuntimeOptions options;
  options.simulate = false;
  options.verify_plans = true;
  core::Runtime runtime(options);
  runtime.RegisterDatasetGenerator("chaos-unit", []() {
    return workload::GenerateHiggs(160, 5, 7);
  });
  runtime.EnableFaultInjection([] {
    storage::FaultPlan plan;
    plan.resolver_failure_rate = 1.0;
    plan.max_faults_per_key = 0;  // permanent outage
    return plan;
  }());
  core::HyppoMethod method(&runtime);
  auto pipeline = SequencePipeline(0);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  auto planned = method.PlanPipeline(*pipeline);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto record =
      runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
  EXPECT_FALSE(record.ok());
  EXPECT_TRUE(record.status().IsIoError()) << record.status();
}

TEST(ChaosTest, PermanentOutageExhaustsRetryBoundAndFails) {
  // An unlimited resolver outage can never be degraded away (raw loads
  // are transient by classification), so recovery exhausts its bound and
  // the failure surfaces instead of looping forever.
  core::RuntimeOptions options;
  options.simulate = false;
  options.verify_plans = true;
  options.max_recovery_attempts = 2;
  core::Runtime runtime(options);
  runtime.RegisterDatasetGenerator("chaos-unit", []() {
    return workload::GenerateHiggs(160, 5, 7);
  });
  runtime.EnableFaultInjection([] {
    storage::FaultPlan plan;
    plan.resolver_failure_rate = 1.0;
    plan.max_faults_per_key = 0;
    return plan;
  }());
  core::HyppoMethod method(&runtime);
  auto pipeline = SequencePipeline(0);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  auto planned = method.PlanPipeline(*pipeline);
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto record = runtime.ExecuteAndRecord(*pipeline, planned->aug,
                                         planned->plan,
                                         method.MakeReplanner());
  EXPECT_FALSE(record.ok());
  EXPECT_EQ(runtime.monitor().num_replans(), 2);
}

// ---------------------------------------------------------------------------
// Scenario-level wiring: the fault knob reaches the runtime and the
// recovery telemetry reaches the scenario result.

// ---------------------------------------------------------------------------
// Multi-session chaos: N tenants share one store through the serving
// layer while faults strike it. Every session must still end with the
// fault-free sequence's exact bytes — no tenant observes another
// tenant's injected failure (or its recovery) as corruption.

TEST(ChaosTest, MultiSessionSharedStoreSweepMatchesFaultFree) {
  auto baseline = RunSequence(0.0, 1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->payload_bytes.empty());

  int64_t swept_faults = 0;
  for (int sessions : {2, 4}) {
    for (double fault_rate : {0.05, 0.2}) {
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("sessions=" + std::to_string(sessions) +
                     " rate=" + std::to_string(fault_rate) +
                     " seed=" + std::to_string(seed));
        serving::ServingOptions options;
        options.runtime.simulate = false;
        options.runtime.verify_plans = true;
        options.runtime.storage_budget_bytes = 1 << 20;
        options.runtime.max_recovery_attempts = 6;
        options.method.augment.use_equivalences = false;
        options.max_in_flight_sessions = sessions;
        options.fault_rate = fault_rate;
        options.fault_seed = seed;
        serving::SessionManager manager(options);
        manager.runtime().RegisterDatasetGenerator("chaos-unit", []() {
          return workload::GenerateHiggs(160, 5, 7);
        });
        std::vector<serving::SessionRequest> requests;
        for (int s = 0; s < sessions; ++s) {
          serving::SessionRequest request;
          request.session_id = "chaos-tenant-" + std::to_string(s);
          for (int i = 0; i < kSequenceLength; ++i) {
            auto pipeline = SequencePipeline(i);
            ASSERT_TRUE(pipeline.ok()) << pipeline.status();
            request.pipelines.push_back(*std::move(pipeline));
          }
          requests.push_back(std::move(request));
        }
        for (const serving::SessionReport& report :
             manager.RunSessions(requests)) {
          SCOPED_TRACE(report.session_id);
          ASSERT_TRUE(report.status.ok()) << report.status;
          EXPECT_EQ(report.pipelines_completed, kSequenceLength);
          std::map<std::string, std::string> bytes;
          for (const auto& [name, payload] : report.target_payloads) {
            auto serialized = storage::SerializePayload(payload);
            ASSERT_TRUE(serialized.ok()) << serialized.status();
            bytes[name] = *std::move(serialized);
          }
          EXPECT_EQ(bytes, baseline->payload_bytes);
        }
        swept_faults += manager.runtime().monitor().num_injected_faults();
      }
    }
  }
  EXPECT_GT(swept_faults, 0);
}

TEST(ChaosTest, IterativeScenarioAbsorbsInjectedFaults) {
  workload::ScenarioConfig config;
  config.num_pipelines = 6;
  config.budget_factor = 0.5;
  config.seed = 5;
  config.fault_rate = 0.15;
  config.fault_seed = 99;
  auto result =
      workload::RunIterativeScenario(workload::MakeHyppoFactory(), config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->injected_faults, 0);
  EXPECT_GE(result->failed_tasks, 0);
  EXPECT_GT(result->cumulative_seconds, 0.0);
}

}  // namespace
}  // namespace hyppo
