#include <gtest/gtest.h>

#include "baselines/no_optimization.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"

namespace hyppo {
namespace {

using core::ArtifactKind;
using core::Pipeline;
using core::PipelineBuilder;
using core::TaskType;

TEST(PipelineGraphDotTest, RendersLabels) {
  PipelineBuilder builder("dot");
  NodeId data = *builder.LoadDataset("viz", 100, 3);
  auto split = *builder.Split(data);
  (void)split;
  const std::string dot = builder.graph().ToDot("p");
  EXPECT_NE(dot.find("digraph \"p\""), std::string::npos);
  EXPECT_NE(dot.find("TrainTestSplit.split"), std::string::npos);
  EXPECT_NE(dot.find("train"), std::string::npos);
  EXPECT_NE(dot.find("__load__.load"), std::string::npos);
}

TEST(PipelineGraphTest, RemoveTaskKeepsLabelsConsistent) {
  PipelineBuilder builder("rm");
  NodeId data = *builder.LoadDataset("x", 100, 3);
  auto split = *builder.Split(data);
  (void)split;
  core::PipelineGraph graph = builder.graph();
  // Remove the split edge; the load edge remains addressable.
  EdgeId split_edge = kInvalidEdge;
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    if (graph.task(e).type == TaskType::kSplit) {
      split_edge = e;
    }
  }
  ASSERT_NE(split_edge, kInvalidEdge);
  ASSERT_TRUE(graph.RemoveTask(split_edge).ok());
  EXPECT_EQ(graph.num_tasks(), 1);
  for (EdgeId e : graph.hypergraph().LiveEdges()) {
    EXPECT_EQ(graph.task(e).type, TaskType::kLoad);
  }
}

TEST(RuntimeTest, LogicalClockAccumulates) {
  core::RuntimeOptions options;
  options.simulate = true;
  core::Runtime runtime(options);
  const workload::UseCase use_case = workload::UseCase::Higgs();
  runtime.RegisterDatasetGenerator(use_case.DatasetId(0.005), [use_case]() {
    return workload::GenerateUseCase(use_case, 0.005, 1);
  });
  EXPECT_DOUBLE_EQ(runtime.now_seconds(), 0.0);
  baselines::NoOptimizationMethod method(&runtime);
  workload::PipelineGenerator generator(use_case, 0.005, 1);
  auto pipeline = generator.Next();
  ASSERT_TRUE(pipeline.ok());
  auto planned = method.PlanPipeline(*pipeline);
  ASSERT_TRUE(planned.ok());
  auto record =
      runtime.ExecuteAndRecord(*pipeline, planned->aug, planned->plan);
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(runtime.now_seconds(), record->seconds);
  // Access timestamps in the history carry the logical time.
  bool any_access = false;
  for (NodeId v = 1; v < runtime.history().graph().num_artifacts(); ++v) {
    if (runtime.history().record(v).access_count > 0) {
      any_access = true;
      EXPECT_LE(runtime.history().record(v).last_access_seconds,
                runtime.now_seconds());
    }
  }
  EXPECT_TRUE(any_access);
}

TEST(MethodTest, DefaultRetrievalIsNotImplemented) {
  core::RuntimeOptions options;
  options.simulate = true;
  core::Runtime runtime(options);
  baselines::NoOptimizationMethod method(&runtime);
  EXPECT_TRUE(method.PlanRetrieval({"anything"})
                  .status()
                  .IsNotImplemented());
}

TEST(UseCaseTest, DatasetIdEncodesScale) {
  const workload::UseCase higgs = workload::UseCase::Higgs();
  EXPECT_EQ(higgs.DatasetId(0.01), "higgs_x0.01");
  EXPECT_EQ(higgs.DatasetId(1.0), "higgs_x1");
  EXPECT_NE(higgs.DatasetId(0.01), higgs.DatasetId(0.02));
}

TEST(HyppoSystemTest, ObjectivePriceRunsEndToEnd) {
  core::HyppoSystem::Options options;
  options.runtime.objective = core::Augmenter::Objective::kPrice;
  options.runtime.storage_budget_bytes = 1 << 20;
  core::HyppoSystem system(options);
  auto data = workload::GenerateHiggs(400, 4, 2);
  ASSERT_TRUE(data.ok());
  system.RegisterDataset("price-unit", *data);
  const char* code = R"(
data        = load("price-unit", rows=400, cols=4)
train, test = sk.TrainTestSplit.split(data)
imp         = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imp.transform(train)
model       = sk.DecisionTreeClassifier.fit(train_i, max_depth=3)
preds       = model.predict(train_i)
score       = evaluate(preds, train_i, metric="accuracy")
)";
  auto report = system.RunCode(code, "price-run");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->plan.cost, 0.0);
}

TEST(WorkloadTest, EnsembleGeneratorHandlesTinyHistory) {
  workload::PipelineGenerator generator(workload::UseCase::Taxi(), 0.005, 2);
  workload::PipelineSpec base = generator.RandomSpec();
  // Fewer than two models must be rejected.
  EXPECT_FALSE(
      generator.BuildEnsemblePipeline(base, {base.model}, "VotingRegressor",
                                      "tiny")
          .ok());
}

TEST(ArtifactKindTest, NamesAreStable) {
  EXPECT_STREQ(core::ArtifactKindToString(ArtifactKind::kOpState),
               "op-state");
  EXPECT_STREQ(core::ArtifactKindToString(ArtifactKind::kValue), "value");
  EXPECT_STREQ(core::ArtifactKindToString(ArtifactKind::kRaw), "raw");
  EXPECT_STREQ(core::TaskTypeToString(TaskType::kEvaluate), "evaluate");
}

}  // namespace
}  // namespace hyppo
