#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/executor.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"

namespace hyppo {
namespace {

// ---------------------------------------------------------------------------
// Differential test: the serial and parallel executors are the same
// machine. Over randomized exploratory pipelines, both must produce
// byte-identical payload maps, and with estimate charging enabled the
// charged totals must agree exactly (wall-clock noise excluded).

core::Augmentation AsAugmentation(const core::Pipeline& pipeline) {
  core::Augmentation aug;
  aug.graph = pipeline.graph;
  aug.targets = pipeline.targets;
  const size_t slots =
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots());
  aug.edge_weight.assign(slots, 1.0);
  aug.edge_seconds.assign(slots, 1.0);
  // Distinct per-edge estimates so an aggregation bug cannot hide behind
  // uniform durations.
  for (size_t e = 0; e < slots; ++e) {
    aug.edge_seconds[e] = 0.125 * static_cast<double>(e + 1);
  }
  return aug;
}

core::Plan FullPlan(const core::Augmentation& aug) {
  core::Plan plan;
  plan.edges = aug.graph.hypergraph().LiveEdges();
  for (EdgeId e : plan.edges) {
    plan.cost += aug.edge_weight[static_cast<size_t>(e)];
    plan.seconds += aug.edge_seconds[static_cast<size_t>(e)];
  }
  return plan;
}

// Serializes every payload so comparison is bytewise, not structural.
Result<std::map<NodeId, std::string>> PayloadBytes(
    const std::map<NodeId, storage::ArtifactPayload>& payloads) {
  std::map<NodeId, std::string> bytes;
  for (const auto& [node, payload] : payloads) {
    HYPPO_ASSIGN_OR_RETURN(bytes[node], storage::SerializePayload(payload));
  }
  return bytes;
}

TEST(ExecutorDifferentialTest, SerialAndParallelAgreeOnRandomizedPlans) {
  // The minimum dataset scale (RowsAt clamps at 400 rows) keeps real ML
  // execution fast enough for the sanitizer jobs.
  constexpr double kScale = 1e-9;
  workload::PipelineGenerator generator(workload::UseCase::Higgs(), kScale,
                                        /*seed=*/99);
  core::DatasetResolver resolver =
      [](const std::string&) -> Result<ml::DatasetPtr> {
    return workload::GenerateUseCase(workload::UseCase::Higgs(), kScale, 3);
  };
  for (int i = 0; i < 12; ++i) {
    SCOPED_TRACE("pipeline " + std::to_string(i));
    auto pipeline = generator.Next();
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    core::Augmentation aug = AsAugmentation(*pipeline);
    core::Plan plan = FullPlan(aug);

    storage::InMemoryArtifactStore serial_store;
    core::Monitor serial_monitor;
    core::Executor serial_executor(&serial_store, resolver, &serial_monitor);
    core::Executor::Options serial;
    serial.charge_estimates = true;
    auto serial_result = serial_executor.Execute(aug, plan, serial);
    ASSERT_TRUE(serial_result.ok()) << serial_result.status();
    ASSERT_TRUE(serial_result->complete());

    storage::InMemoryArtifactStore parallel_store;
    core::Monitor parallel_monitor;
    core::Executor parallel_executor(&parallel_store, resolver,
                                     &parallel_monitor);
    core::Executor::Options parallel;
    parallel.charge_estimates = true;
    parallel.parallelism = 8;
    auto parallel_result = parallel_executor.Execute(aug, plan, parallel);
    ASSERT_TRUE(parallel_result.ok()) << parallel_result.status();
    ASSERT_TRUE(parallel_result->complete());

    // Identical payload maps, byte for byte.
    auto serial_bytes = PayloadBytes(serial_result->payloads);
    ASSERT_TRUE(serial_bytes.ok()) << serial_bytes.status();
    auto parallel_bytes = PayloadBytes(parallel_result->payloads);
    ASSERT_TRUE(parallel_bytes.ok()) << parallel_bytes.status();
    EXPECT_EQ(*serial_bytes, *parallel_bytes);

    // Identical charged totals: both executors charge the augmentation's
    // per-edge estimates, so the sums are the same floating-point value.
    EXPECT_EQ(serial_result->total_seconds, parallel_result->total_seconds);
    EXPECT_EQ(serial_result->task_runs.size(),
              parallel_result->task_runs.size());
    EXPECT_EQ(serial_monitor.num_task_records(),
              parallel_monitor.num_task_records());
    // The parallel schedule's critical path never exceeds the total.
    EXPECT_LE(parallel_result->critical_path_seconds,
              parallel_result->total_seconds + 1e-12);
  }
}

TEST(ExecutorDifferentialTest, ChargedEstimatesMatchPlanSeconds) {
  constexpr double kScale = 1e-9;
  workload::PipelineGenerator generator(workload::UseCase::Higgs(), kScale,
                                        /*seed=*/17);
  core::DatasetResolver resolver =
      [](const std::string&) -> Result<ml::DatasetPtr> {
    return workload::GenerateUseCase(workload::UseCase::Higgs(), kScale, 7);
  };
  auto pipeline = generator.Next();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  core::Augmentation aug = AsAugmentation(*pipeline);
  core::Plan plan = FullPlan(aug);
  storage::InMemoryArtifactStore store;
  core::Monitor monitor;
  core::Executor executor(&store, resolver, &monitor);
  core::Executor::Options options;
  options.charge_estimates = true;
  auto result = executor.Execute(aug, plan, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Compute tasks are billed at their estimates; load tasks charge the
  // storage model. This plan is loads + computes, so the total equals the
  // sum over executed tasks of those charges — which the plan summed too.
  double expected = 0.0;
  for (const auto& run : result->task_runs) {
    expected += run.seconds;
  }
  EXPECT_DOUBLE_EQ(result->total_seconds, expected);
}

}  // namespace
}  // namespace hyppo
