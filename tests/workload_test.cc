#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hypergraph/algorithms.h"
#include "workload/datagen.h"
#include "workload/pipeline_generator.h"
#include "workload/scenario.h"
#include "workload/synthetic_hypergraph.h"

namespace hyppo::workload {
namespace {

// ---------------------------------------------------------------------------
// Dataset generators (Table I stand-ins).

TEST(DatagenTest, HiggsShapeAndTarget) {
  auto data = GenerateHiggs(2000, 30, 42);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->rows(), 2000);
  EXPECT_EQ((*data)->cols(), 30);
  ASSERT_TRUE((*data)->has_target());
  // Binary target with challenge-like signal skew (~1/3).
  int64_t positives = 0;
  for (double y : (*data)->target()) {
    EXPECT_TRUE(y == 0.0 || y == 1.0);
    positives += y > 0.5 ? 1 : 0;
  }
  const double rate = static_cast<double>(positives) / 2000.0;
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.5);
}

TEST(DatagenTest, HiggsHasMissingValues) {
  auto data = GenerateHiggs(2000, 30, 42);
  ASSERT_TRUE(data.ok());
  int64_t missing = 0;
  for (int64_t c = 0; c < 30; ++c) {
    for (int64_t r = 0; r < 2000; ++r) {
      missing += std::isnan((*data)->at(r, c)) ? 1 : 0;
    }
  }
  EXPECT_GT(missing, 100);       // some
  EXPECT_LT(missing, 2000 * 4);  // but sparse
}

TEST(DatagenTest, HiggsDeterministicPerSeed) {
  auto a = GenerateHiggs(200, 10, 7);
  auto b = GenerateHiggs(200, 10, 7);
  auto c = GenerateHiggs(200, 10, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_DOUBLE_EQ((*a)->at(5, 3), (*b)->at(5, 3));
  EXPECT_NE((*a)->at(5, 3), (*c)->at(5, 3));
}

TEST(DatagenTest, TaxiShapeAndDurations) {
  auto data = GenerateTaxi(1500, 42);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)->cols(), 11);
  EXPECT_EQ((*data)->column_names()[0], "pickup_lat");
  ASSERT_TRUE((*data)->has_target());
  for (double duration : (*data)->target()) {
    EXPECT_GT(duration, 0.0);
    EXPECT_LT(duration, 3600.0 * 12);
  }
}

TEST(DatagenTest, UseCaseDescriptorsMatchTable1) {
  const UseCase higgs = UseCase::Higgs();
  EXPECT_EQ(higgs.teams, 1784);
  EXPECT_EQ(higgs.paper_rows, 800000);
  EXPECT_EQ(higgs.paper_cols, 30);
  EXPECT_TRUE(higgs.classification);
  const UseCase taxi = UseCase::Taxi();
  EXPECT_EQ(taxi.teams, 1254);
  EXPECT_EQ(taxi.paper_rows, 1000000);
  EXPECT_EQ(taxi.paper_cols, 11);
  EXPECT_FALSE(taxi.classification);
  // Multiplier scaling with a floor.
  EXPECT_EQ(higgs.RowsAt(0.01), 8000);
  EXPECT_EQ(higgs.RowsAt(1e-9), 400);
}

// ---------------------------------------------------------------------------
// Pipeline generator.

TEST(PipelineGeneratorTest, DeterministicSequences) {
  PipelineGenerator g1(UseCase::Higgs(), 0.005, 42);
  PipelineGenerator g2(UseCase::Higgs(), 0.005, 42);
  for (int i = 0; i < 5; ++i) {
    auto p1 = g1.Next();
    auto p2 = g2.Next();
    ASSERT_TRUE(p1.ok() && p2.ok());
    EXPECT_EQ(p1->graph.num_artifacts(), p2->graph.num_artifacts());
    // Same artifact names in the same order.
    for (NodeId v = 1; v < p1->graph.num_artifacts(); ++v) {
      EXPECT_EQ(p1->graph.artifact(v).name, p2->graph.artifact(v).name);
    }
  }
}

TEST(PipelineGeneratorTest, PipelinesAreValidHypergraphs) {
  for (const UseCase& use_case : {UseCase::Higgs(), UseCase::Taxi()}) {
    PipelineGenerator generator(use_case, 0.005, 7);
    for (int i = 0; i < 10; ++i) {
      auto pipeline = generator.Next();
      ASSERT_TRUE(pipeline.ok()) << pipeline.status();
      // Paper: typical pipeline lengths 4-15 tasks.
      EXPECT_GE(pipeline->graph.num_tasks(), 4);
      EXPECT_LE(pipeline->graph.num_tasks(), 20);
      // Every target derivable from the source.
      EXPECT_TRUE(pipeline->graph.hypergraph().AreBConnected(
          pipeline->targets, {pipeline->graph.source()}));
    }
  }
}

TEST(PipelineGeneratorTest, MutationsShareLineagePrefix) {
  PipelineGenerator generator(UseCase::Higgs(), 0.005, 21);
  auto first = generator.Next();
  ASSERT_TRUE(first.ok());
  std::set<std::string> first_names;
  for (NodeId v = 1; v < first->graph.num_artifacts(); ++v) {
    first_names.insert(first->graph.artifact(v).name);
  }
  // Across the following iterations, a good share of artifacts repeats
  // (the within-experiment reuse opportunity).
  int shared_total = 0;
  int artifacts_total = 0;
  for (int i = 0; i < 6; ++i) {
    auto next = generator.Next();
    ASSERT_TRUE(next.ok());
    for (NodeId v = 1; v < next->graph.num_artifacts(); ++v) {
      ++artifacts_total;
      shared_total +=
          first_names.count(next->graph.artifact(v).name) > 0 ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(shared_total) /
                static_cast<double>(artifacts_total),
            0.25);
}

TEST(PipelineGeneratorTest, EnsemblePipelineUsesMultiInputHyperedge) {
  PipelineGenerator generator(UseCase::Taxi(), 0.005, 5);
  PipelineSpec base = generator.RandomSpec();
  std::vector<StageSpec> models = {generator.RandomModel(),
                                   generator.RandomModel()};
  auto pipeline = generator.BuildEnsemblePipeline(
      base, models, "StackingRegressor", "ens");
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  // The ensemble fit hyperedge has >= 3 tail nodes (2 states + train).
  bool found_multi_state = false;
  for (EdgeId e : pipeline->graph.hypergraph().LiveEdges()) {
    if (pipeline->graph.task(e).logical_op == "StackingRegressor" &&
        pipeline->graph.task(e).type == core::TaskType::kFit) {
      EXPECT_GE(pipeline->graph.ordered_tail(e).size(), 3u);
      found_multi_state = true;
    }
  }
  EXPECT_TRUE(found_multi_state);
}

// ---------------------------------------------------------------------------
// Synthetic hypergraphs (scalability study).

TEST(SyntheticHypergraphTest, SatisfiesDegreeRequirement) {
  SyntheticConfig config;
  config.num_artifacts = 15;
  config.alternatives = 3;
  config.seed = 4;
  auto synthetic = GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  const Hypergraph& g = synthetic->aug.graph.hypergraph();
  EXPECT_GE(g.num_nodes() - 1, config.num_artifacts);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.bstar(v).size(), 3u) << "node " << v;
  }
  EXPECT_FALSE(synthetic->aug.targets.empty());
  EXPECT_GT(synthetic->avg_max_path_length, 0.0);
  // Weights in [0.5, 2].
  for (EdgeId e : g.LiveEdges()) {
    const double w = synthetic->aug.edge_weight[static_cast<size_t>(e)];
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 2.0);
  }
}

TEST(SyntheticHypergraphTest, AlwaysSolvable) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    SyntheticConfig config;
    config.num_artifacts = 10;
    config.alternatives = 2;
    config.seed = seed;
    auto synthetic = GenerateSyntheticHypergraph(config);
    ASSERT_TRUE(synthetic.ok());
    EXPECT_TRUE(synthetic->aug.graph.hypergraph().AreBConnected(
        synthetic->aug.targets, {synthetic->aug.graph.source()}));
  }
}

TEST(SyntheticHypergraphTest, RejectsDegenerateConfigs) {
  SyntheticConfig config;
  config.num_artifacts = 1;
  EXPECT_FALSE(GenerateSyntheticHypergraph(config).ok());
}

// ---------------------------------------------------------------------------
// Scenario runners (small simulated smoke runs exercising the full loop).

ScenarioConfig SmallScenario(const UseCase& use_case) {
  ScenarioConfig config;
  config.use_case = use_case;
  config.num_pipelines = 6;
  config.budget_factor = 0.1;
  config.dataset_multiplier = 0.02;
  config.seed = 42;
  config.simulate = true;
  return config;
}

TEST(ScenarioTest, IterativeScenarioRunsAllMethods) {
  const ScenarioConfig config = SmallScenario(UseCase::Higgs());
  const std::pair<const char*, MethodFactory> methods[] = {
      {"NoOptimization", MakeNoOptimizationFactory()},
      {"Helix", MakeHelixFactory()},
      {"Collab", MakeCollabFactory()},
      {"HYPPO", MakeHyppoFactory()},
  };
  double noopt_seconds = 0.0;
  for (const auto& [name, factory] : methods) {
    auto result = RunIterativeScenario(factory, config);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_EQ(result->method, name);
    EXPECT_EQ(result->per_pipeline_seconds.size(), 6u);
    EXPECT_GT(result->cumulative_seconds, 0.0);
    EXPECT_GT(result->price_eur, 0.0);
    if (std::string(name) == "NoOptimization") {
      noopt_seconds = result->cumulative_seconds;
    } else {
      // Optimizing methods never lose to the straw man (same cost model).
      EXPECT_LE(result->cumulative_seconds, noopt_seconds * 1.001) << name;
    }
  }
}

// The parallelism knob threads through RuntimeOptions into both the plan
// executor and the optimizer's parallel search engine; the scenario's
// simulated cost totals must not depend on it.
TEST(ScenarioTest, ParallelismDoesNotChangeSimulatedCosts) {
  const ScenarioConfig serial = SmallScenario(UseCase::Higgs());
  ScenarioConfig parallel = SmallScenario(UseCase::Higgs());
  parallel.parallelism = 2;
  auto serial_run = RunIterativeScenario(MakeHyppoFactory(), serial);
  auto parallel_run = RunIterativeScenario(MakeHyppoFactory(), parallel);
  ASSERT_TRUE(serial_run.ok()) << serial_run.status();
  ASSERT_TRUE(parallel_run.ok()) << parallel_run.status();
  EXPECT_NEAR(parallel_run->cumulative_seconds,
              serial_run->cumulative_seconds, 1e-9);
  EXPECT_EQ(parallel_run->stored_artifacts, serial_run->stored_artifacts);
}

TEST(ScenarioTest, HyppoBeatsBaselinesOnTaxi) {
  const ScenarioConfig config = SmallScenario(UseCase::Taxi());
  auto noopt = RunIterativeScenario(MakeNoOptimizationFactory(), config);
  auto collab = RunIterativeScenario(MakeCollabFactory(), config);
  auto hyppo = RunIterativeScenario(MakeHyppoFactory(), config);
  ASSERT_TRUE(noopt.ok() && collab.ok() && hyppo.ok());
  EXPECT_LT(hyppo->cumulative_seconds, noopt->cumulative_seconds);
  EXPECT_LE(hyppo->cumulative_seconds, collab->cumulative_seconds * 1.001);
}

TEST(ScenarioTest, BudgetScalesWithFactor) {
  ScenarioConfig small = SmallScenario(UseCase::Higgs());
  small.budget_factor = 0.01;
  ScenarioConfig large = SmallScenario(UseCase::Higgs());
  large.budget_factor = 1.0;
  auto small_run = RunIterativeScenario(MakeHyppoFactory(), small);
  auto large_run = RunIterativeScenario(MakeHyppoFactory(), large);
  ASSERT_TRUE(small_run.ok() && large_run.ok());
  EXPECT_LT(small_run->budget_bytes, large_run->budget_bytes);
  // Larger budget cannot hurt execution time.
  EXPECT_LE(large_run->cumulative_seconds,
            small_run->cumulative_seconds * 1.001);
  // Price includes the budget term.
  EXPECT_GT(large_run->price_eur,
            large_run->cumulative_seconds * 0.00018);
}

TEST(ScenarioTest, RetrievalScenarioOrdersMethods) {
  RetrievalConfig config;
  config.use_case = UseCase::Higgs();
  config.history_pipelines = 6;
  config.budget_factor = 0.1;
  config.dataset_multiplier = 0.02;
  config.num_requests = 10;
  config.request_size = 3;
  auto sharing = RunRetrievalScenario(MakeSharingFactory(), config);
  auto hyppo = RunRetrievalScenario(MakeHyppoFactory(), config);
  ASSERT_TRUE(sharing.ok()) << sharing.status();
  ASSERT_TRUE(hyppo.ok()) << hyppo.status();
  EXPECT_GT(sharing->mean_request_seconds, 0.0);
  EXPECT_LE(hyppo->mean_request_seconds,
            sharing->mean_request_seconds * 1.001);
  EXPECT_GT(hyppo->stored_fraction, 0.0);
  EXPECT_DOUBLE_EQ(sharing->stored_fraction, 0.0);  // Sharing stores nothing
}

TEST(ScenarioTest, RetrievalModelsOnly) {
  RetrievalConfig config;
  config.use_case = UseCase::Taxi();
  config.history_pipelines = 6;
  config.budget_factor = 0.1;
  config.dataset_multiplier = 0.02;
  config.num_requests = 5;
  config.request_size = 2;
  config.models_only = true;
  auto result = RunRetrievalScenario(MakeHyppoFactory(), config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->mean_request_seconds, 0.0);
}

TEST(ScenarioTest, EnsembleScenarioHyppoWinsBig) {
  EnsembleConfig config;
  config.history_pipelines = 8;
  config.ensemble_pipelines = 4;
  config.budget_factor = 0.1;
  config.dataset_multiplier = 0.02;
  auto collab = RunEnsembleScenario(MakeCollabFactory(), config);
  auto hyppo = RunEnsembleScenario(MakeHyppoFactory(), config);
  ASSERT_TRUE(collab.ok()) << collab.status();
  ASSERT_TRUE(hyppo.ok()) << hyppo.status();
  EXPECT_LT(hyppo->cumulative_seconds, collab->cumulative_seconds);
}

TEST(ScenarioTest, TypeStudyProducesFig5Aggregates) {
  ScenarioConfig config = SmallScenario(UseCase::Higgs());
  auto study = RunTypeStudy(config);
  ASSERT_TRUE(study.ok()) << study.status();
  EXPECT_FALSE(study->artifact_kinds.empty());
  EXPECT_FALSE(study->task_types.empty());
  // Fit tasks cost more than evaluate tasks (Fig. 5(e)).
  double fit_seconds = 0.0;
  double evaluate_seconds = 0.0;
  for (const TypeStudyRow& row : study->task_types) {
    if (row.label == "fit") {
      fit_seconds = row.mean_seconds;
    }
    if (row.label == "evaluate") {
      evaluate_seconds = row.mean_seconds;
    }
  }
  EXPECT_GT(fit_seconds, evaluate_seconds);
  // Train/test artifacts are MB-scale, op-states far smaller (Fig. 5(d)).
  double train_bytes = 0.0;
  double state_bytes = 0.0;
  for (const TypeStudyRow& row : study->artifact_kinds) {
    if (row.label == "train") {
      train_bytes = row.mean_bytes;
    }
    if (row.label == "op-state") {
      state_bytes = row.mean_bytes;
    }
  }
  EXPECT_GT(train_bytes, state_bytes);
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  const ScenarioConfig config = SmallScenario(UseCase::Higgs());
  auto a = RunIterativeScenario(MakeHyppoFactory(), config);
  auto b = RunIterativeScenario(MakeHyppoFactory(), config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->cumulative_seconds, b->cumulative_seconds);
}

}  // namespace
}  // namespace hyppo::workload
