// Concurrency battery for the multi-tenant serving runtime, built to run
// under ThreadSanitizer: sessions hammering one shared history/store
// (with compaction firing mid-run), chaos sweeps proving no session
// observes another's injected faults as corruption, and concurrent
// history readers exercising the thread-local traversal scratch.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "serving/session_manager.h"
#include "storage/serialization.h"
#include "workload/datagen.h"

namespace hyppo {
namespace {

// Same family as serving_test.cc: shared preprocessing prefix, model
// unique per (session, step), implementations pinned for byte identity.
Result<core::Pipeline> ServePipeline(int session, int step) {
  core::PipelineBuilder builder("hammer-s" + std::to_string(session) + "-p" +
                                std::to_string(step));
  HYPPO_ASSIGN_OR_RETURN(NodeId data,
                         builder.LoadDataset("serving-unit", 160, 5));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  ml::Config impute;
  impute.Set("strategy", "mean");
  HYPPO_ASSIGN_OR_RETURN(
      NodeId imputer,
      builder.Fit("SimpleImputer", "skl.SimpleImputer", split.first, impute));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_i,
                         builder.Transform(imputer, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_i,
                         builder.Transform(imputer, split.second));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s, builder.Transform(scaler, train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s, builder.Transform(scaler, test_i));
  ml::Config model_config;
  model_config.SetInt("max_depth", 2 + 3 * step + session);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                  train_s, model_config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

void RegisterServingDataset(core::Runtime* runtime) {
  runtime->RegisterDatasetGenerator(
      "serving-unit", []() { return workload::GenerateHiggs(160, 5, 7); });
}

serving::ServingOptions BaseOptions() {
  serving::ServingOptions options;
  options.runtime.simulate = false;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.runtime.max_recovery_attempts = 6;
  options.method.augment.use_equivalences = false;
  return options;
}

Result<std::vector<serving::SessionRequest>> MakeRequests(int num_sessions,
                                                          int num_pipelines) {
  std::vector<serving::SessionRequest> requests;
  for (int s = 0; s < num_sessions; ++s) {
    serving::SessionRequest request;
    request.session_id = "hammer-" + std::to_string(s);
    for (int p = 0; p < num_pipelines; ++p) {
      HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline, ServePipeline(s, p));
      request.pipelines.push_back(std::move(pipeline));
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

Status VerifyManagerHistory(const serving::SessionManager& manager) {
  const analysis::Verifier verifier;
  analysis::AnalysisReport report = verifier.VerifyHistory(
      manager.runtime().history(), &manager.runtime().dictionary(),
      manager.runtime().options().storage_budget_bytes);
  report.Merge(verifier.CheckStoreConsistency(manager.runtime().history(),
                                              manager.runtime().store()));
  if (!report.ok()) {
    return Status::Internal(report.ToString());
  }
  return Status::OK();
}

Result<std::map<std::string, std::string>> PayloadBytes(
    const std::map<std::string, storage::ArtifactPayload>& payloads) {
  std::map<std::string, std::string> bytes;
  for (const auto& [name, payload] : payloads) {
    HYPPO_ASSIGN_OR_RETURN(std::string serialized,
                           storage::SerializePayload(payload));
    bytes[name] = std::move(serialized);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// The hammer: 2/4/8 sessions submit/plan/execute concurrently against
// one history small enough that Pareto compaction rewrites it mid-run.
// Everything must complete, and the final catalog must verify clean.

TEST(ServingConcurrencyTest, SessionsHammerSharedHistoryAcrossCompaction) {
  for (int num_sessions : {2, 4, 8}) {
    SCOPED_TRACE("sessions=" + std::to_string(num_sessions));
    serving::ServingOptions options = BaseOptions();
    // ~12 artifacts per pipeline: compaction fires repeatedly under the
    // concurrent planners/committers.
    options.runtime.history_max_artifacts = 24;
    options.max_in_flight_sessions = num_sessions;
    serving::SessionManager manager(options);
    RegisterServingDataset(&manager.runtime());
    auto requests = MakeRequests(num_sessions, 4);
    ASSERT_TRUE(requests.ok()) << requests.status();
    const std::vector<serving::SessionReport> reports =
        manager.RunSessions(*requests);
    for (const serving::SessionReport& report : reports) {
      ASSERT_TRUE(report.status.ok())
          << report.session_id << ": " << report.status;
      EXPECT_EQ(report.pipelines_completed, 4);
    }
    EXPECT_GT(manager.runtime().monitor().num_history_compacted(), 0);
    const Status verified = VerifyManagerHistory(manager);
    EXPECT_TRUE(verified.ok()) << verified;
    const serving::SessionManager::Stats stats = manager.stats();
    EXPECT_EQ(stats.sessions_completed, num_sessions);
    EXPECT_EQ(stats.pipelines_completed, num_sessions * 4);
  }
}

// ---------------------------------------------------------------------------
// Chaos isolation: with storage/compute faults injected into the shared
// store, every session still returns payloads byte-identical to its
// fault-free isolated reference — no tenant observes another tenant's
// fault (or its recovery) as corruption.

TEST(ServingConcurrencyTest, InjectedFaultsNeverLeakAcrossSessions) {
  constexpr int kPipelines = 3;
  // Fault-free isolated references, one per session index.
  std::vector<std::map<std::string, std::string>> references;
  for (int s = 0; s < 4; ++s) {
    core::HyppoSystem::Options options;
    options.runtime = BaseOptions().runtime;
    options.method = BaseOptions().method;
    core::HyppoSystem system(options);
    RegisterServingDataset(&system.runtime());
    std::map<std::string, storage::ArtifactPayload> payloads;
    for (int p = 0; p < kPipelines; ++p) {
      auto pipeline = ServePipeline(s, p);
      ASSERT_TRUE(pipeline.ok()) << pipeline.status();
      auto report = system.RunPipeline(*pipeline);
      ASSERT_TRUE(report.ok()) << report.status();
      for (const auto& [name, payload] : report->target_payloads) {
        payloads[name] = payload;
      }
    }
    auto bytes = PayloadBytes(payloads);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    references.push_back(*std::move(bytes));
  }

  int64_t swept_faults = 0;
  for (int num_sessions : {2, 4}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("sessions=" + std::to_string(num_sessions) +
                   " seed=" + std::to_string(seed));
      serving::ServingOptions options = BaseOptions();
      options.max_in_flight_sessions = num_sessions;
      options.fault_rate = 0.2;
      options.fault_seed = seed;
      serving::SessionManager manager(options);
      RegisterServingDataset(&manager.runtime());
      auto requests = MakeRequests(num_sessions, kPipelines);
      ASSERT_TRUE(requests.ok()) << requests.status();
      const std::vector<serving::SessionReport> reports =
          manager.RunSessions(*requests);
      for (int s = 0; s < num_sessions; ++s) {
        SCOPED_TRACE("session " + std::to_string(s));
        ASSERT_TRUE(reports[s].status.ok())
            << reports[s].session_id << ": " << reports[s].status;
        auto served = PayloadBytes(reports[s].target_payloads);
        ASSERT_TRUE(served.ok()) << served.status();
        EXPECT_EQ(*served, references[s]);
      }
      swept_faults += manager.runtime().monitor().num_injected_faults();
      const Status verified = VerifyManagerHistory(manager);
      EXPECT_TRUE(verified.ok()) << verified;
    }
  }
  // The sweep actually exercised the fault paths.
  EXPECT_GT(swept_faults, 0);
}

// ---------------------------------------------------------------------------
// Concurrent readers: CollectBackwardRelevantEdges keeps its marker
// scratch in thread-local storage, so any number of threads may traverse
// one history concurrently (TSan verifies share-freedom) and every
// thread sees the same answer.

TEST(ServingConcurrencyTest, BackwardTraversalIsSafeUnderConcurrentReaders) {
  serving::SessionManager manager(BaseOptions());
  RegisterServingDataset(&manager.runtime());
  auto requests = MakeRequests(2, 3);
  ASSERT_TRUE(requests.ok()) << requests.status();
  for (const serving::SessionReport& report :
       manager.RunSessions(*requests)) {
    ASSERT_TRUE(report.status.ok()) << report.status;
  }
  const core::History& history = manager.runtime().history();
  const std::vector<NodeId> matched = history.MaterializedArtifacts();
  ASSERT_FALSE(matched.empty());
  const std::vector<EdgeId> expected =
      history.CollectBackwardRelevantEdges(matched);

  std::vector<std::thread> threads;
  // Plain chars, one per thread: vector<bool>'s packed bit proxies
  // would make neighbouring writes race.
  std::vector<char> agreed(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      bool all_equal = true;
      for (int i = 0; i < 200; ++i) {
        // Alternate between the full matched set and a suffix so threads
        // drive the epoch counter at different rates.
        const std::vector<NodeId> query(
            matched.begin() + (i % 2 == 0 ? 0 : t % matched.size()),
            matched.end());
        const std::vector<EdgeId> got =
            history.CollectBackwardRelevantEdges(query);
        if (query.size() == matched.size() && got != expected) {
          all_equal = false;
        }
      }
      agreed[t] = all_equal;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < 8; ++t) {
    EXPECT_TRUE(agreed[t]) << "thread " << t;
  }
}

}  // namespace
}  // namespace hyppo
