#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/binary_energy.h"

#include "common/rng.h"
#include "baselines/collab.h"
#include "baselines/collab_e.h"
#include "baselines/dag_reuse.h"
#include "baselines/flow.h"
#include "baselines/helix.h"
#include "baselines/no_optimization.h"
#include "baselines/sharing.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "hypergraph/algorithms.h"
#include "workload/datagen.h"
#include "workload/synthetic_hypergraph.h"

namespace hyppo::baselines {
namespace {

using core::ArtifactInfo;
using core::ArtifactKind;
using core::Augmentation;
using core::Pipeline;
using core::PipelineBuilder;
using core::Plan;
using core::PlanGenerator;
using core::TaskInfo;
using core::TaskType;

// ---------------------------------------------------------------------------
// Max flow.

TEST(MaxFlowTest, ClassicNetwork) {
  // s=0, t=5, CLRS-style network with max flow 23.
  MaxFlow flow(6);
  flow.AddEdge(0, 1, 16);
  flow.AddEdge(0, 2, 13);
  flow.AddEdge(1, 2, 10);
  flow.AddEdge(2, 1, 4);
  flow.AddEdge(1, 3, 12);
  flow.AddEdge(3, 2, 9);
  flow.AddEdge(2, 4, 14);
  flow.AddEdge(4, 3, 7);
  flow.AddEdge(3, 5, 20);
  flow.AddEdge(4, 5, 4);
  EXPECT_NEAR(flow.Compute(0, 5), 23.0, 1e-9);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow flow(3);
  flow.AddEdge(0, 1, 5);
  EXPECT_DOUBLE_EQ(flow.Compute(0, 2), 0.0);
  const std::vector<bool> side = flow.SourceSide(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlowTest, MinCutSeparates) {
  // One bottleneck edge of capacity 1.
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 10);
  flow.AddEdge(1, 2, 1);
  flow.AddEdge(2, 3, 10);
  EXPECT_NEAR(flow.Compute(0, 3), 1.0, 1e-9);
  const std::vector<bool> side = flow.SourceSide(0);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

// ---------------------------------------------------------------------------
// Binary energy.

TEST(BinaryEnergyTest, UnaryOnly) {
  BinaryEnergy energy(2);
  energy.AddUnaryIfOne(0, 3.0);   // prefers 0
  energy.AddUnaryIfZero(1, 2.0);  // prefers 1
  auto solution = energy.Minimize();
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution->labels[0]);
  EXPECT_TRUE(solution->labels[1]);
  EXPECT_DOUBLE_EQ(solution->energy, 0.0);
}

TEST(BinaryEnergyTest, ImplicationConstraint) {
  // x0 forced 1; (x0=1, x1=0) forbidden => x1 must be 1 despite cost.
  BinaryEnergy energy(2);
  energy.AddUnaryIfZero(0, BinaryEnergy::kHardConstraint);
  energy.AddPairwiseOneZero(0, 1, BinaryEnergy::kHardConstraint);
  energy.AddUnaryIfOne(1, 5.0);
  auto solution = energy.Minimize();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->labels[0]);
  EXPECT_TRUE(solution->labels[1]);
  EXPECT_DOUBLE_EQ(solution->energy, 5.0);
}

TEST(BinaryEnergyTest, SoftPairwiseTradesOff) {
  // x0 forced 1. (x0=1,x1=0) costs 2; x1=1 costs 3 => keep x1=0, pay 2.
  BinaryEnergy energy(2);
  energy.AddUnaryIfZero(0, BinaryEnergy::kHardConstraint);
  energy.AddPairwiseOneZero(0, 1, 2.0);
  energy.AddUnaryIfOne(1, 3.0);
  auto solution = energy.Minimize();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->labels[0]);
  EXPECT_FALSE(solution->labels[1]);
  EXPECT_DOUBLE_EQ(solution->energy, 2.0);
}

TEST(BinaryEnergyTest, InfeasibleDetected) {
  BinaryEnergy energy(1);
  energy.AddUnaryIfZero(0, BinaryEnergy::kHardConstraint);
  energy.AddUnaryIfOne(0, BinaryEnergy::kHardConstraint);
  EXPECT_TRUE(energy.Minimize().status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// DAG reuse (Helix's exact load-vs-compute).

ArtifactInfo MakeArtifact(const std::string& name,
                          ArtifactKind kind = ArtifactKind::kData) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.rows = 10;
  info.cols = 2;
  info.size_bytes = 160;
  return info;
}

EdgeId AddTask(Augmentation& aug, const std::string& label,
               std::vector<NodeId> tails, std::vector<NodeId> heads,
               double weight) {
  TaskInfo task;
  task.logical_op = label;
  task.type = TaskType::kTransform;
  task.impl = "synthetic." + label;
  EdgeId e = aug.graph.AddTask(task, std::move(tails), std::move(heads))
                 .ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

EdgeId AddLoad(Augmentation& aug, NodeId node, double weight) {
  EdgeId e = aug.graph.AddLoadTask(node).ValueOrDie();
  aug.edge_weight.resize(
      static_cast<size_t>(aug.graph.hypergraph().num_edge_slots()), 0.0);
  aug.edge_seconds.resize(aug.edge_weight.size(), 0.0);
  aug.edge_weight[static_cast<size_t>(e)] = weight;
  aug.edge_seconds[static_cast<size_t>(e)] = weight;
  return e;
}

TEST(DagReuseTest, LoadBeatsRecompute) {
  // chain raw -> a -> b; b is materialized cheaply.
  Augmentation aug;
  NodeId raw = aug.graph.AddArtifact(MakeArtifact("raw", ArtifactKind::kRaw))
                   .ValueOrDie();
  NodeId a = aug.graph.AddArtifact(MakeArtifact("a")).ValueOrDie();
  NodeId b = aug.graph.AddArtifact(MakeArtifact("b")).ValueOrDie();
  AddLoad(aug, raw, 1.0);
  AddTask(aug, "t1", {raw}, {a}, 5.0);
  AddTask(aug, "t2", {a}, {b}, 5.0);
  AddLoad(aug, b, 0.5);
  aug.targets = {b};
  auto plan = SolveDagReuse(aug, OriginalDerivations(aug), aug.targets);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NEAR(plan->cost, 0.5, 1e-12);
  EXPECT_EQ(plan->edges.size(), 1u);
}

TEST(DagReuseTest, PrunesUnneededAncestors) {
  // raw -> a -> b, plus raw -> c (c not needed for b).
  Augmentation aug;
  NodeId raw = aug.graph.AddArtifact(MakeArtifact("raw", ArtifactKind::kRaw))
                   .ValueOrDie();
  NodeId a = aug.graph.AddArtifact(MakeArtifact("a")).ValueOrDie();
  NodeId b = aug.graph.AddArtifact(MakeArtifact("b")).ValueOrDie();
  NodeId c = aug.graph.AddArtifact(MakeArtifact("c")).ValueOrDie();
  AddLoad(aug, raw, 1.0);
  AddTask(aug, "t1", {raw}, {a}, 2.0);
  AddTask(aug, "t2", {a}, {b}, 2.0);
  AddTask(aug, "t3", {raw}, {c}, 100.0);
  aug.targets = {b};
  auto plan = SolveDagReuse(aug, OriginalDerivations(aug), aug.targets);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->cost, 5.0, 1e-12);
}

TEST(DagReuseTest, InfeasibleWithoutLoadOrCompute) {
  Augmentation aug;
  NodeId orphan =
      aug.graph.AddArtifact(MakeArtifact("orphan")).ValueOrDie();
  aug.targets = {orphan};
  aug.edge_weight.clear();
  aug.edge_seconds.clear();
  std::vector<EdgeId> chosen(
      static_cast<size_t>(aug.graph.hypergraph().num_nodes()),
      kInvalidEdge);
  EXPECT_FALSE(SolveDagReuse(aug, chosen, aug.targets).ok());
}

// Property: on synthetic DAGs without alternatives, the min-cut reuse
// solver matches the exhaustive hypergraph optimizer exactly.
class DagReuseOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DagReuseOptimalityTest, MatchesHypergraphSearch) {
  workload::SyntheticConfig config;
  config.num_artifacts = 10;
  config.alternatives = 1;  // one derivation per node: a DAG
  config.seed = GetParam() * 31 + 5;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  Augmentation& aug = synthetic->aug;
  // Give roughly half the nodes load edges.
  Rng rng(GetParam());
  for (NodeId v = 1; v < aug.graph.hypergraph().num_nodes(); ++v) {
    bool has_load = false;
    for (EdgeId e : aug.graph.hypergraph().bstar(v)) {
      has_load = has_load || aug.graph.task(e).type == TaskType::kLoad;
    }
    if (!has_load && rng.Bernoulli(0.5)) {
      AddLoad(aug, v, rng.Uniform(0.2, 3.0));
    }
  }
  PlanGenerator generator;
  auto optimal = generator.BruteForce(aug);
  ASSERT_TRUE(optimal.ok()) << optimal.status();
  auto reuse = SolveDagReuse(aug, OriginalDerivations(aug), aug.targets);
  ASSERT_TRUE(reuse.ok()) << reuse.status();
  EXPECT_NEAR(reuse->cost, optimal->cost, 1e-9);
  EXPECT_TRUE(IsValidPlan(aug.graph.hypergraph(), reuse->edges,
                          {aug.graph.source()}, aug.targets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagReuseOptimalityTest,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Collab's linear heuristic.

TEST(CollabReuseTest, PinnedSuboptimalCase) {
  // Shared expensive subexpression: s -> raw(1) -> shared(10) used by BOTH
  // x and y (cheap steps, 1 each); x and y also loadable at 7 each.
  // Optimal: compute shared once: 1 + 10 + 1 + 1 = 13.
  // Collab's per-node sums double-count `shared`, making compute look like
  // 12 per branch vs load 7, so it loads both: 14. Suboptimal, as the
  // paper says ("good enough plans").
  Augmentation aug;
  NodeId raw = aug.graph.AddArtifact(MakeArtifact("raw", ArtifactKind::kRaw))
                   .ValueOrDie();
  NodeId shared = aug.graph.AddArtifact(MakeArtifact("shared")).ValueOrDie();
  NodeId x = aug.graph.AddArtifact(MakeArtifact("x")).ValueOrDie();
  NodeId y = aug.graph.AddArtifact(MakeArtifact("y")).ValueOrDie();
  AddLoad(aug, raw, 1.0);
  AddTask(aug, "mk_shared", {raw}, {shared}, 10.0);
  AddTask(aug, "mk_x", {shared}, {x}, 1.0);
  AddTask(aug, "mk_y", {shared}, {y}, 1.0);
  AddLoad(aug, x, 7.0);
  AddLoad(aug, y, 7.0);
  aug.targets = {x, y};

  auto collab = CollabMethod::LinearReuse(aug, aug.targets);
  ASSERT_TRUE(collab.ok()) << collab.status();
  EXPECT_NEAR(collab->cost, 14.0, 1e-9);

  PlanGenerator generator;
  auto optimal =
      generator.BruteForce(aug);
  ASSERT_TRUE(optimal.ok());
  EXPECT_NEAR(optimal->cost, 13.0, 1e-9);
  // Helix's exact min-cut also finds 13.
  auto helix = SolveDagReuse(aug, OriginalDerivations(aug), aug.targets);
  ASSERT_TRUE(helix.ok());
  EXPECT_NEAR(helix->cost, 13.0, 1e-9);
}

TEST(CollabReuseTest, PlansAreValid) {
  workload::SyntheticConfig config;
  config.num_artifacts = 12;
  config.alternatives = 1;
  config.seed = 77;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  auto plan =
      CollabMethod::LinearReuse(synthetic->aug, synthetic->aug.targets);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(IsValidPlan(synthetic->aug.graph.hypergraph(), plan->edges,
                          {synthetic->aug.graph.source()},
                          synthetic->aug.targets));
}

// ---------------------------------------------------------------------------
// COLLAB-E: exhaustive equivalence-aware baseline equals HYPPO's optimum.

class CollabEOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollabEOptimalityTest, MatchesHyppoOptimal) {
  workload::SyntheticConfig config;
  config.num_artifacts = 8;
  config.alternatives = 2 + static_cast<int32_t>(GetParam() % 2);
  config.seed = GetParam() * 53 + 3;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  PlanGenerator generator;
  auto hyppo_plan = generator.BruteForce(synthetic->aug);
  ASSERT_TRUE(hyppo_plan.ok());
  CollabEStats stats;
  auto collab_e = CollabEOptimize(synthetic->aug, 10'000'000, &stats);
  ASSERT_TRUE(collab_e.ok()) << collab_e.status();
  EXPECT_NEAR(collab_e->cost, hyppo_plan->cost, 1e-9);
  EXPECT_GT(stats.combinations, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollabEOptimalityTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(CollabETest, CombinationBudgetEnforced) {
  workload::SyntheticConfig config;
  config.num_artifacts = 14;
  config.alternatives = 3;
  config.seed = 11;
  auto synthetic = workload::GenerateSyntheticHypergraph(config);
  ASSERT_TRUE(synthetic.ok());
  EXPECT_TRUE(CollabEOptimize(synthetic->aug, 5).status()
                  .IsResourceExhausted());
}

// ---------------------------------------------------------------------------
// Method-level behaviour over a shared runtime.

Result<Pipeline> BuildSmallPipeline(const std::string& id) {
  PipelineBuilder builder(id);
  HYPPO_ASSIGN_OR_RETURN(NodeId data, builder.LoadDataset("unit", 500, 5));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s,
                         builder.Transform(scaler, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s,
                         builder.Transform(scaler, split.second));
  ml::Config config;
  config.SetInt("max_depth", 4);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                  train_s, config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

std::unique_ptr<core::Runtime> MakeUnitRuntime(bool simulate) {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 1 << 20;
  options.simulate = simulate;
  auto runtime = std::make_unique<core::Runtime>(options);
  runtime->RegisterDatasetGenerator(
      "unit", []() { return workload::GenerateHiggs(500, 5, 3); });
  return runtime;
}

double RunTwice(core::Method& method, core::Runtime& runtime) {
  Pipeline p1 = *BuildSmallPipeline("p1");
  auto planned1 = method.PlanPipeline(p1);
  planned1.status().Abort("plan1");
  auto record1 = runtime.ExecuteAndRecord(p1, planned1->aug, planned1->plan);
  record1.status().Abort("exec1");
  method.AfterExecution(p1, *planned1, *record1).Abort("mat1");
  Pipeline p2 = *BuildSmallPipeline("p2");
  auto planned2 = method.PlanPipeline(p2);
  planned2.status().Abort("plan2");
  auto record2 = runtime.ExecuteAndRecord(p2, planned2->aug, planned2->plan);
  record2.status().Abort("exec2");
  method.AfterExecution(p2, *planned2, *record2).Abort("mat2");
  return record1->seconds + record2->seconds;
}

TEST(MethodsTest, NoOptimizationNeverMaterializes) {
  auto runtime = MakeUnitRuntime(true);
  NoOptimizationMethod method(runtime.get());
  RunTwice(method, *runtime);
  EXPECT_TRUE(runtime->history().MaterializedArtifacts().empty());
  EXPECT_EQ(runtime->store().num_entries(), 0u);
}

TEST(MethodsTest, NoOptimizationExecutesPipelineAsWritten) {
  auto runtime = MakeUnitRuntime(true);
  NoOptimizationMethod method(runtime.get());
  Pipeline pipeline = *BuildSmallPipeline("p1");
  auto planned = method.PlanPipeline(pipeline);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->plan.edges.size(),
            static_cast<size_t>(pipeline.graph.num_tasks()));
}

// Paper-scale simulated pipeline: estimated compute times dominate load
// latencies, so materialization criteria trigger (they correctly refuse
// to store artifacts that are cheaper to recompute than to load).
Result<Pipeline> BuildHeavyPipeline(const std::string& id) {
  PipelineBuilder builder(id);
  HYPPO_ASSIGN_OR_RETURN(NodeId data,
                         builder.LoadDataset("heavy", 400000, 30));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s,
                         builder.Transform(scaler, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s,
                         builder.Transform(scaler, split.second));
  ml::Config config;
  config.SetInt("n_estimators", 20);
  config.SetInt("max_depth", 8);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("RandomForestClassifier", "skl.RandomForestClassifier",
                  train_s, config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

std::unique_ptr<core::Runtime> MakeHeavyRuntime() {
  core::RuntimeOptions options;
  options.storage_budget_bytes = 256ll << 20;
  options.simulate = true;
  auto runtime = std::make_unique<core::Runtime>(options);
  runtime->RegisterDatasetGenerator(
      "heavy", []() { return workload::GenerateHiggs(400000, 30, 3); });
  return runtime;
}

TEST(MethodsTest, HelixReusesIdenticalRepetition) {
  auto runtime = MakeHeavyRuntime();
  HelixMethod method(runtime.get());
  Pipeline p1 = *BuildHeavyPipeline("p1");
  auto planned1 = method.PlanPipeline(p1);
  ASSERT_TRUE(planned1.ok()) << planned1.status();
  auto record1 =
      runtime->ExecuteAndRecord(p1, planned1->aug, planned1->plan);
  ASSERT_TRUE(record1.ok());
  ASSERT_TRUE(method.AfterExecution(p1, *planned1, *record1).ok());
  EXPECT_GT(runtime->history().MaterializedArtifacts().size(), 0u);
  // Second identical pipeline: strictly cheaper plan.
  Pipeline p2 = *BuildHeavyPipeline("p2");
  auto planned2 = method.PlanPipeline(p2);
  ASSERT_TRUE(planned2.ok()) << planned2.status();
  EXPECT_LT(planned2->plan.cost, planned1->plan.cost);
}

TEST(MethodsTest, CollabMaterializesAndReuses) {
  auto runtime = MakeUnitRuntime(true);
  CollabMethod method(runtime.get());
  Pipeline p1 = *BuildSmallPipeline("p1");
  auto planned1 = method.PlanPipeline(p1);
  ASSERT_TRUE(planned1.ok()) << planned1.status();
  auto record1 =
      runtime->ExecuteAndRecord(p1, planned1->aug, planned1->plan);
  ASSERT_TRUE(record1.ok());
  ASSERT_TRUE(method.AfterExecution(p1, *planned1, *record1).ok());
  Pipeline p2 = *BuildSmallPipeline("p2");
  auto planned2 = method.PlanPipeline(p2);
  ASSERT_TRUE(planned2.ok()) << planned2.status();
  EXPECT_LE(planned2->plan.cost, planned1->plan.cost);
}

TEST(MethodsTest, HyppoAtLeastAsGoodOnRepetition) {
  // On the second identical pipeline, HYPPO's plan cost must be <= every
  // baseline's (it optimizes over a superset of options).
  double costs[3];
  int index = 0;
  for (int which = 0; which < 3; ++which) {
    auto runtime = MakeUnitRuntime(true);
    std::unique_ptr<core::Method> method;
    if (which == 0) {
      method = std::make_unique<core::HyppoMethod>(runtime.get());
    } else if (which == 1) {
      method = std::make_unique<HelixMethod>(runtime.get());
    } else {
      method = std::make_unique<CollabMethod>(runtime.get());
    }
    Pipeline p1 = *BuildSmallPipeline("p1");
    auto planned1 = method->PlanPipeline(p1);
    ASSERT_TRUE(planned1.ok());
    auto record1 =
        runtime->ExecuteAndRecord(p1, planned1->aug, planned1->plan);
    ASSERT_TRUE(record1.ok());
    ASSERT_TRUE(method->AfterExecution(p1, *planned1, *record1).ok());
    Pipeline p2 = *BuildSmallPipeline("p2");
    auto planned2 = method->PlanPipeline(p2);
    ASSERT_TRUE(planned2.ok());
    costs[index++] = planned2->plan.cost;
  }
  EXPECT_LE(costs[0], costs[1] + 1e-9);  // HYPPO <= Helix
  EXPECT_LE(costs[0], costs[2] + 1e-9);  // HYPPO <= Collab
}

TEST(MethodsTest, SharingRetrievalSharesCommonPrefixes) {
  auto runtime = MakeUnitRuntime(true);
  SharingMethod method(runtime.get());
  Pipeline p1 = *BuildSmallPipeline("p1");
  auto planned = method.PlanPipeline(p1);
  ASSERT_TRUE(planned.ok());
  auto record = runtime->ExecuteAndRecord(p1, planned->aug, planned->plan);
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE(method.AfterExecution(p1, *planned, *record).ok());
  // Request two artifacts sharing the scaler prefix: the shared prefix
  // tasks must appear once.
  const core::History& history = runtime->history();
  std::vector<std::string> targets;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    if (history.graph().artifact(v).kind == ArtifactKind::kTrain ||
        history.graph().artifact(v).kind == ArtifactKind::kTest) {
      targets.push_back(history.graph().artifact(v).name);
    }
  }
  ASSERT_GE(targets.size(), 2u);
  auto retrieval = method.PlanRetrieval(targets);
  ASSERT_TRUE(retrieval.ok()) << retrieval.status();
  // The union plan contains each task at most once.
  std::set<EdgeId> unique(retrieval->plan.edges.begin(),
                          retrieval->plan.edges.end());
  EXPECT_EQ(unique.size(), retrieval->plan.edges.size());
  EXPECT_TRUE(IsValidPlan(retrieval->aug.graph.hypergraph(),
                          retrieval->plan.edges,
                          {retrieval->aug.graph.source()},
                          retrieval->aug.targets));
}

TEST(MethodsTest, RetrievalCostOrderHyppoBest) {
  // Build the same history under each method (B > 0) and compare a
  // retrieval of every op-state artifact.
  double seconds[3];
  int index = 0;
  for (int which = 0; which < 3; ++which) {
    auto runtime = MakeUnitRuntime(true);
    std::unique_ptr<core::Method> method;
    if (which == 0) {
      method = std::make_unique<core::HyppoMethod>(runtime.get());
    } else if (which == 1) {
      method = std::make_unique<SharingMethod>(runtime.get());
    } else {
      method = std::make_unique<CollabMethod>(runtime.get());
    }
    Pipeline p1 = *BuildSmallPipeline("p1");
    auto planned = method->PlanPipeline(p1);
    ASSERT_TRUE(planned.ok());
    auto record = runtime->ExecuteAndRecord(p1, planned->aug, planned->plan);
    ASSERT_TRUE(record.ok());
    ASSERT_TRUE(method->AfterExecution(p1, *planned, *record).ok());
    std::vector<std::string> targets;
    const core::History& history = runtime->history();
    for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
      if (history.graph().artifact(v).kind == ArtifactKind::kOpState) {
        targets.push_back(history.graph().artifact(v).name);
      }
    }
    auto retrieval = method->PlanRetrieval(targets);
    ASSERT_TRUE(retrieval.ok()) << method->name() << ": "
                                << retrieval.status();
    seconds[index++] = retrieval->plan.cost;
  }
  EXPECT_LE(seconds[0], seconds[1] + 1e-9);  // HYPPO <= Sharing
  EXPECT_LE(seconds[0], seconds[2] + 1e-9);  // HYPPO <= Collab
}

}  // namespace
}  // namespace hyppo::baselines
