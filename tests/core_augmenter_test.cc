#include <gtest/gtest.h>

#include <set>

#include "core/augmenter.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "hypergraph/algorithms.h"
#include "workload/datagen.h"

namespace hyppo::core {
namespace {

class AugmenterTest : public ::testing::Test {
 protected:
  AugmenterTest()
      : dictionary_(Dictionary::FromRegistry(ml::OperatorRegistry::Global())),
        augmenter_(&dictionary_, &estimator_) {}

  // data -> split -> scaler fit/transforms -> tree fit -> predict -> eval.
  Result<Pipeline> BuildPipeline(const std::string& id,
                                 const std::string& scaler_impl) {
    PipelineBuilder builder(id);
    HYPPO_ASSIGN_OR_RETURN(NodeId data,
                           builder.LoadDataset("aug-unit", 2000, 8));
    HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
    HYPPO_ASSIGN_OR_RETURN(
        NodeId scaler,
        builder.Fit("StandardScaler", scaler_impl, split.first));
    HYPPO_ASSIGN_OR_RETURN(NodeId train_s,
                           builder.Transform(scaler, split.first));
    HYPPO_ASSIGN_OR_RETURN(NodeId test_s,
                           builder.Transform(scaler, split.second));
    ml::Config config;
    config.SetInt("max_depth", 4);
    HYPPO_ASSIGN_OR_RETURN(
        NodeId model,
        builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                    train_s, config));
    HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
    HYPPO_RETURN_NOT_OK(
        builder.Evaluate(preds, test_s, "accuracy").status());
    return std::move(builder).Build();
  }

  // Records the full pipeline structure (and fake observations) into the
  // history, as the runtime would after execution.
  void RecordIntoHistory(const Pipeline& pipeline, double task_seconds) {
    std::map<NodeId, NodeId> to_history;
    for (NodeId v = 1; v < pipeline.graph.num_artifacts(); ++v) {
      to_history[v] = history_.Observe(pipeline.graph.artifact(v));
      if (pipeline.graph.artifact(v).kind == ArtifactKind::kRaw) {
        history_.RegisterSourceData(to_history[v]).ValueOrDie();
      }
    }
    for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
      const TaskInfo& task = pipeline.graph.task(e);
      if (task.type == TaskType::kLoad) {
        continue;
      }
      std::vector<NodeId> tails;
      for (NodeId t : pipeline.graph.ordered_tail(e)) {
        if (t != pipeline.graph.source()) {
          tails.push_back(to_history[t]);
        }
      }
      std::vector<NodeId> heads;
      for (NodeId h : pipeline.graph.ordered_head(e)) {
        heads.push_back(to_history[h]);
        history_.RecordComputeSeconds(to_history[h], task_seconds);
      }
      history_.ObserveTask(task, tails, heads, task_seconds).ValueOrDie();
    }
  }

  int CountEdges(const Augmentation& aug, TaskType type) const {
    int count = 0;
    for (EdgeId e : aug.graph.hypergraph().LiveEdges()) {
      count += aug.graph.task(e).type == type ? 1 : 0;
    }
    return count;
  }

  Dictionary dictionary_;
  CostEstimator estimator_;
  Augmenter augmenter_;
  History history_;
};

TEST_F(AugmenterTest, PipelineIsSubhypergraphOfAugmentation) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok()) << aug.status();
  // Node ids of P are preserved (copy-first construction).
  for (NodeId v = 0; v < pipeline.graph.num_artifacts(); ++v) {
    EXPECT_EQ(aug->graph.artifact(v).name, pipeline.graph.artifact(v).name);
  }
  EXPECT_EQ(aug->targets, pipeline.targets);
  // Every P task signature appears in A.
  std::set<std::string> aug_signatures;
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    aug_signatures.insert(aug->graph.TaskSignature(e));
  }
  for (EdgeId e : pipeline.graph.hypergraph().LiveEdges()) {
    EXPECT_TRUE(aug_signatures.count(pipeline.graph.TaskSignature(e)) > 0);
  }
}

TEST_F(AugmenterTest, DictionaryAlternativesAreParallelEdges) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  // The StandardScaler fit node has >= 2 producing edges (skl + tfl).
  const NodeId scaler_fit = [&]() {
    for (NodeId v = 1; v < pipeline.graph.num_artifacts(); ++v) {
      if (pipeline.graph.artifact(v).kind == ArtifactKind::kOpState &&
          pipeline.graph.artifact(v).display.find("StandardScaler") !=
              std::string::npos) {
        return v;
      }
    }
    return kInvalidNode;
  }();
  ASSERT_NE(scaler_fit, kInvalidNode);
  std::set<std::string> impls;
  for (EdgeId e : aug->graph.hypergraph().bstar(scaler_fit)) {
    impls.insert(aug->graph.task(e).impl);
  }
  EXPECT_TRUE(impls.count("skl.StandardScaler") > 0);
  EXPECT_TRUE(impls.count("tfl.StandardScaler") > 0);
}

TEST_F(AugmenterTest, NoEquivalencesDisablesAlternatives) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;
  options.use_equivalences = false;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    EXPECT_NE(aug->graph.task(e).impl, "tfl.StandardScaler");
  }
}

TEST_F(AugmenterTest, ColdHistoryMakesEverythingNew) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  // All compute edges (including dictionary alternatives) are new tasks.
  int computes = 0;
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    computes += aug->graph.task(e).type != TaskType::kLoad ? 1 : 0;
  }
  EXPECT_EQ(static_cast<int>(aug->new_tasks.size()), computes);
}

TEST_F(AugmenterTest, KnownHistoryTasksAreNotNew) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(pipeline, 0.5);
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  // Only the dictionary alternatives are new now.
  for (EdgeId e : aug->new_tasks) {
    const TaskInfo& task = aug->graph.task(e);
    EXPECT_NE(task.impl.substr(0, 4), "skl.")
        << "pipeline task should be known: " << task.impl;
  }
}

TEST_F(AugmenterTest, MaterializedArtifactsGetLoadEdges) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(pipeline, 0.5);
  // Materialize the scaler state in the history.
  NodeId h_state = kInvalidNode;
  for (NodeId v = 1; v < history_.graph().num_artifacts(); ++v) {
    if (history_.graph().artifact(v).kind == ArtifactKind::kOpState) {
      h_state = v;
    }
  }
  ASSERT_NE(h_state, kInvalidNode);
  ASSERT_TRUE(history_.MarkMaterialized(h_state).ok());

  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  const NodeId a_state =
      *aug->graph.FindArtifact(history_.graph().artifact(h_state).name);
  bool has_load = false;
  for (EdgeId e : aug->graph.hypergraph().bstar(a_state)) {
    has_load = has_load || aug->graph.task(e).type == TaskType::kLoad;
  }
  EXPECT_TRUE(has_load);

  // With use_materialized = false, the load edge disappears.
  options.use_materialized = false;
  auto no_loads = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(no_loads.ok());
  const NodeId n_state =
      *no_loads->graph.FindArtifact(history_.graph().artifact(h_state).name);
  for (EdgeId e : no_loads->graph.hypergraph().bstar(n_state)) {
    EXPECT_NE(no_loads->graph.task(e).type, TaskType::kLoad);
  }
}

TEST_F(AugmenterTest, EquivalentPipelineSplicesHistoryDerivation) {
  // Record the skl pipeline; augment the *tfl* variant. The artifacts
  // collide by name, so the recorded skl tasks splice in as parallel
  // derivations.
  Pipeline skl_pipeline = *BuildPipeline("p1", "skl.StandardScaler");
  RecordIntoHistory(skl_pipeline, 0.5);
  Pipeline tfl_pipeline = *BuildPipeline("p2", "tfl.StandardScaler");
  Augmenter::Options options;
  auto aug = augmenter_.Augment(tfl_pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  // The scaler state has both impl edges, and the augmentation carries
  // history-observed durations for the skl one.
  bool found_skl = false;
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = aug->graph.task(e);
    if (task.impl == "skl.StandardScaler" && task.type == TaskType::kFit) {
      found_skl = true;
      EXPECT_DOUBLE_EQ(aug->edge_seconds[static_cast<size_t>(e)], 0.5);
    }
  }
  EXPECT_TRUE(found_skl);
}

TEST_F(AugmenterTest, SpliceDeduplicatesAgainstPipelineEdges) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(pipeline, 0.5);
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  std::set<std::string> signatures;
  for (EdgeId e : aug->graph.hypergraph().LiveEdges()) {
    const std::string signature = aug->graph.TaskSignature(e);
    EXPECT_TRUE(signatures.insert(signature).second)
        << "duplicate edge: " << signature;
  }
}

TEST_F(AugmenterTest, ObservedDurationBeatsEstimate) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options options;
  auto cold = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(cold.ok());
  RecordIntoHistory(pipeline, 7.0);  // far from any estimate
  auto warm = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(warm.ok());
  // Compute edges of the pipeline now carry the observed 7 s.
  int observed = 0;
  for (EdgeId e : warm->graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = warm->graph.task(e);
    if (task.type != TaskType::kLoad && task.impl.substr(0, 4) == "skl.") {
      EXPECT_DOUBLE_EQ(warm->edge_seconds[static_cast<size_t>(e)], 7.0);
      ++observed;
    }
  }
  EXPECT_GT(observed, 0);
}

TEST_F(AugmenterTest, PriceObjectiveChargesInputBytes) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  Augmenter::Options time_options;
  auto time_aug = augmenter_.Augment(pipeline, history_, time_options);
  ASSERT_TRUE(time_aug.ok());
  Augmenter::Options price_options;
  price_options.objective = Augmenter::Objective::kPrice;
  auto price_aug = augmenter_.Augment(pipeline, history_, price_options);
  ASSERT_TRUE(price_aug.ok());
  // Price weights include the per-byte term, so for a task with large
  // inputs price != time * price_per_time alone; also price weights are
  // strictly positive.
  for (EdgeId e : price_aug->graph.hypergraph().LiveEdges()) {
    EXPECT_GT(price_aug->edge_weight[static_cast<size_t>(e)], 0.0);
  }
  // Find the model fit edge (large train input): price dominated by size.
  for (EdgeId e : price_aug->graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = price_aug->graph.task(e);
    if (task.logical_op == "DecisionTreeClassifier" &&
        task.type == TaskType::kFit) {
      const double seconds =
          price_aug->edge_seconds[static_cast<size_t>(e)];
      EXPECT_GT(price_aug->edge_weight[static_cast<size_t>(e)],
                seconds * 0.00018);
    }
  }
}

TEST_F(AugmenterTest, RetrievalAugmentationDerivesHistoryArtifacts) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  RecordIntoHistory(pipeline, 0.5);
  const std::string target_name =
      pipeline.graph.artifact(pipeline.targets[0]).name;
  Augmenter::Options options;
  auto aug = augmenter_.AugmentForRetrieval(history_, {target_name}, options);
  ASSERT_TRUE(aug.ok()) << aug.status();
  ASSERT_EQ(aug->targets.size(), 1u);
  EXPECT_TRUE(aug->graph.hypergraph().AreBConnected(
      aug->targets, {aug->graph.source()}));
  // Unknown artifact names are rejected.
  EXPECT_TRUE(augmenter_.AugmentForRetrieval(history_, {"not-a-name"},
                                             options)
                  .status()
                  .IsNotFound());
}

TEST_F(AugmenterTest, RetrievalOmitsUnrelatedHistoryParts) {
  Pipeline p1 = *BuildPipeline("p1", "skl.StandardScaler");
  RecordIntoHistory(p1, 0.5);
  // A second, unrelated pipeline over a different dataset.
  PipelineBuilder builder("p2");
  NodeId other = *builder.LoadDataset("other-data", 500, 3);
  auto split = *builder.Split(other);
  *builder.Fit("MinMaxScaler", "skl.MinMaxScaler", split.first);
  Pipeline p2 = *std::move(builder).Build();
  RecordIntoHistory(p2, 0.5);

  const std::string target_name = p1.graph.artifact(p1.targets[0]).name;
  Augmenter::Options options;
  auto aug = augmenter_.AugmentForRetrieval(history_, {target_name}, options);
  ASSERT_TRUE(aug.ok());
  // p2's dataset does not appear: the retrieval augmentation is the
  // backward-relevant part of H only.
  EXPECT_FALSE(aug->graph.HasArtifact(SourceArtifactName("other-data")));
}

// End-to-end: with an expensive user impl and a cheap equivalent, the
// optimized plan routes through the equivalent (the Fig. 1(c) Π3 case).
TEST_F(AugmenterTest, OptimizerExploitsCheaperEquivalentImpl) {
  Pipeline pipeline = *BuildPipeline("p", "skl.StandardScaler");
  // Teach the estimator that skl scaling is expensive and tfl is cheap.
  estimator_.Observe("skl.StandardScaler", TaskType::kFit, 1500, 8, 5.0);
  estimator_.Observe("tfl.StandardScaler", TaskType::kFit, 1500, 8, 0.01);
  Augmenter::Options options;
  auto aug = augmenter_.Augment(pipeline, history_, options);
  ASSERT_TRUE(aug.ok());
  PlanGenerator generator;
  PlanGenerator::Options search;
  auto plan = generator.Optimize(*aug, search);
  ASSERT_TRUE(plan.ok()) << plan.status();
  bool used_tfl = false;
  for (EdgeId e : plan->edges) {
    const TaskInfo& task = aug->graph.task(e);
    if (task.logical_op == "StandardScaler" &&
        task.type == TaskType::kFit) {
      used_tfl = task.impl == "tfl.StandardScaler";
    }
  }
  EXPECT_TRUE(used_tfl);
}

}  // namespace
}  // namespace hyppo::core
