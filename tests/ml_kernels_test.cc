#include "ml/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace hyppo::ml::kernels {
namespace {

std::vector<double> RandomVector(size_t n, Rng& rng) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = rng.Gaussian();
  }
  return out;
}

// Column-pointer array over a column-major buffer (rows per column).
std::vector<const double*> Columns(const std::vector<double>& values,
                                   int64_t rows, int64_t cols) {
  std::vector<const double*> out(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    out[static_cast<size_t>(c)] = values.data() + c * rows;
  }
  return out;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

// Shapes deliberately straddle the blocking parameters (48/256 for GEMM,
// 16 for Gram tiles, 256 for distance row blocks) and include the empty
// and single-row degenerate cases.
struct GemmShape {
  int64_t m, k, n;
};
const GemmShape kGemmShapes[] = {{0, 5, 4},   {1, 1, 1},   {3, 7, 2},
                                 {48, 16, 8}, {49, 17, 9}, {97, 300, 31},
                                 {53, 257, 65}};

// --- bitwise contracts -----------------------------------------------------
// blocked::Gemm, blocked::GemvColumns, and the blocked distance kernel fix
// the same per-element accumulation order as the reference, so they must
// agree bit for bit, not just within tolerance.

TEST(KernelsGemm, BlockedMatchesReferenceBitwise) {
  Rng rng(1);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = RandomVector(static_cast<size_t>(s.m * s.k), rng);
    const auto b = RandomVector(static_cast<size_t>(s.k * s.n), rng);
    std::vector<double> c_ref(static_cast<size_t>(s.m * s.n), -1.0);
    std::vector<double> c_blocked(static_cast<size_t>(s.m * s.n), -2.0);
    ref::Gemm(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    blocked::Gemm(a.data(), b.data(), c_blocked.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < c_ref.size(); ++i) {
      ASSERT_EQ(c_ref[i], c_blocked[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(KernelsGemvColumns, BlockedMatchesReferenceBitwise) {
  Rng rng(2);
  for (int64_t rows : {0, 1, 7, 255, 256, 301}) {
    for (int64_t d : {1, 3, 16, 33}) {
      const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
      const auto cols = Columns(values, rows, d);
      const auto w = RandomVector(static_cast<size_t>(d), rng);
      const auto shift = RandomVector(static_cast<size_t>(d), rng);
      std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
      std::vector<double> y_blocked(static_cast<size_t>(rows), -2.0);
      ref::GemvColumns(cols.data(), rows, d, shift.data(), w.data(), 0.25,
                       y_ref.data());
      blocked::GemvColumns(cols.data(), rows, d, shift.data(), w.data(), 0.25,
                           y_blocked.data());
      for (size_t i = 0; i < y_ref.size(); ++i) {
        ASSERT_EQ(y_ref[i], y_blocked[i]) << "rows=" << rows << " d=" << d;
      }
      // Null shift variant.
      ref::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                       y_ref.data());
      blocked::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                           y_blocked.data());
      for (size_t i = 0; i < y_ref.size(); ++i) {
        ASSERT_EQ(y_ref[i], y_blocked[i]);
      }
    }
  }
}

TEST(KernelsDistances, BlockedMatchesReferenceBitwise) {
  Rng rng(3);
  for (int64_t rows : {0, 1, 100, 256, 511}) {
    for (int64_t d : {1, 5, 17}) {
      for (int64_t k : {1, 3, 8}) {
        const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
        const auto cols = Columns(values, rows, d);
        const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
        std::vector<double> sq_ref(static_cast<size_t>(rows * k), -1.0);
        std::vector<double> sq_blocked(static_cast<size_t>(rows * k), -2.0);
        ref::PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                                      sq_ref.data());
        blocked::PairwiseSquaredDistancesRows(cols.data(), rows, d,
                                              centers.data(), k,
                                              sq_blocked.data(), 0, rows);
        for (size_t i = 0; i < sq_ref.size(); ++i) {
          ASSERT_EQ(sq_ref[i], sq_blocked[i])
              << "rows=" << rows << " d=" << d << " k=" << k;
        }
      }
    }
  }
}

// --- tolerance contracts ---------------------------------------------------
// The unrolled reductions (Gemv rows, Gram, Dot, Sum) change only the
// association, so ref and blocked agree within a max-abs-diff bound that
// scales with the reduction length.

TEST(KernelsGemv, BlockedWithinTolerance) {
  Rng rng(4);
  for (int64_t rows : {0, 1, 31, 97}) {
    for (int64_t cols : {1, 4, 63, 300}) {
      const auto m = RandomVector(static_cast<size_t>(rows * cols), rng);
      const auto x = RandomVector(static_cast<size_t>(cols), rng);
      std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
      std::vector<double> y_blocked(static_cast<size_t>(rows), -2.0);
      ref::Gemv(m.data(), rows, cols, x.data(), y_ref.data());
      blocked::Gemv(m.data(), rows, cols, x.data(), y_blocked.data());
      EXPECT_LE(MaxAbsDiff(y_ref, y_blocked),
                1e-12 * static_cast<double>(cols + 1))
          << "rows=" << rows << " cols=" << cols;
    }
  }
}

TEST(KernelsGram, BlockedWithinTolerance) {
  Rng rng(5);
  for (int64_t rows : {0, 1, 77, 501}) {
    for (int64_t d : {1, 2, 15, 16, 17, 40}) {
      const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
      const auto cols = Columns(values, rows, d);
      const auto shift = RandomVector(static_cast<size_t>(d), rng);
      const auto weight = RandomVector(static_cast<size_t>(rows), rng);
      std::vector<double> g_ref(static_cast<size_t>(d * d), -1.0);
      std::vector<double> g_blocked(static_cast<size_t>(d * d), -2.0);
      const double bound = 1e-12 * static_cast<double>(rows + 1);
      ref::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                       g_ref.data());
      blocked::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                           g_blocked.data());
      EXPECT_LE(MaxAbsDiff(g_ref, g_blocked), bound)
          << "rows=" << rows << " d=" << d;
      // Weighted (Hessian-style) variant, no shift.
      ref::GramColumns(cols.data(), rows, d, nullptr, weight.data(),
                       g_ref.data());
      blocked::GramColumns(cols.data(), rows, d, nullptr, weight.data(),
                           g_blocked.data());
      EXPECT_LE(MaxAbsDiff(g_ref, g_blocked), bound)
          << "weighted rows=" << rows << " d=" << d;
    }
  }
}

TEST(KernelsFused, ReductionsWithinTolerance) {
  Rng rng(6);
  for (int64_t n : {0, 1, 2, 3, 4, 5, 63, 1000}) {
    const auto x = RandomVector(static_cast<size_t>(n), rng);
    const auto y = RandomVector(static_cast<size_t>(n), rng);
    const double bound = 1e-12 * static_cast<double>(n + 1);
    double dot_naive = 0.0;
    double sum_naive = 0.0;
    double sq_naive = 0.0;
    double shifted_dot_naive = 0.0;
    double shifted_sq_naive = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      dot_naive += x[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
      sum_naive += x[static_cast<size_t>(i)];
      sq_naive += x[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
      shifted_dot_naive +=
          (x[static_cast<size_t>(i)] - 0.5) * y[static_cast<size_t>(i)];
      const double dv = x[static_cast<size_t>(i)] - 0.5;
      shifted_sq_naive += dv * dv;
    }
    EXPECT_NEAR(Dot(x.data(), y.data(), n), dot_naive, bound);
    EXPECT_NEAR(Sum(x.data(), n), sum_naive, bound);
    EXPECT_NEAR(ShiftedDot(x.data(), 0.5, y.data(), n), shifted_dot_naive,
                bound);
    EXPECT_NEAR(ShiftedSumSq(x.data(), 0.5, n), shifted_sq_naive, bound);
    double sum_out = -1.0;
    double sq_out = -1.0;
    SumAndSumSq(x.data(), n, &sum_out, &sq_out);
    EXPECT_NEAR(sum_out, sum_naive, bound);
    EXPECT_NEAR(sq_out, sq_naive, bound);
  }
}

TEST(KernelsFused, AxpyAndMultiplyExact) {
  Rng rng(7);
  const int64_t n = 257;
  const auto x = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_kernel = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_naive = y_kernel;
  Axpy(-0.75, x.data(), y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] += -0.75 * x[static_cast<size_t>(i)];
  }
  EXPECT_EQ(y_kernel, y_naive);
  ShiftedAxpy(0.5, x.data(), 0.25, y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] +=
        0.5 * (x[static_cast<size_t>(i)] - 0.25);
  }
  EXPECT_EQ(y_kernel, y_naive);
  std::vector<double> product(static_cast<size_t>(n));
  Multiply(x.data(), y_kernel.data(), product.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(product[static_cast<size_t>(i)],
              x[static_cast<size_t>(i)] * y_kernel[static_cast<size_t>(i)]);
  }
}

// --- parallel dispatch determinism -----------------------------------------
// Shapes above the parallel threshold (4M flop estimate): dispatch with 8
// threads must produce exactly the bits the serial dispatch produces.
// These run under TSan in CI, so they double as race tests for the
// row/tile partitioning (including the Gram lower-triangle mirror).

TEST(KernelsParallel, GemmDispatchBitwiseEqualAcrossThreads) {
  Rng rng(8);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;  // 2*m*k*n ~ 4.3M flops: parallel path engages
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_serial(static_cast<size_t>(m * n));
  std::vector<double> c_parallel(static_cast<size_t>(m * n));
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  Gemm(a.data(), b.data(), c_serial.data(), m, k, n, &serial);
  Gemm(a.data(), b.data(), c_parallel.data(), m, k, n, &parallel);
  EXPECT_EQ(c_serial, c_parallel);
}

TEST(KernelsParallel, GramDispatchBitwiseEqualAcrossThreads) {
  Rng rng(9);
  const int64_t rows = 20000;
  const int64_t d = 15;  // rows*d*d = 4.5M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto shift = RandomVector(static_cast<size_t>(d), rng);
  std::vector<double> g_serial(static_cast<size_t>(d * d));
  std::vector<double> g_parallel(static_cast<size_t>(d * d));
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  GramColumns(cols.data(), rows, d, shift.data(), nullptr, g_serial.data(),
              &serial);
  GramColumns(cols.data(), rows, d, shift.data(), nullptr, g_parallel.data(),
              &parallel);
  EXPECT_EQ(g_serial, g_parallel);
}

TEST(KernelsParallel, DistanceAndArgminDispatchBitwiseEqualAcrossThreads) {
  Rng rng(10);
  const int64_t rows = 60000;
  const int64_t d = 8;
  const int64_t k = 3;  // 3*rows*d*k = 4.3M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  std::vector<double> sq_serial(static_cast<size_t>(rows * k));
  std::vector<double> sq_parallel(static_cast<size_t>(rows * k));
  PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                           sq_serial.data(), &serial);
  PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                           sq_parallel.data(), &parallel);
  EXPECT_EQ(sq_serial, sq_parallel);
  std::vector<int64_t> idx_serial(static_cast<size_t>(rows));
  std::vector<int64_t> idx_parallel(static_cast<size_t>(rows));
  std::vector<double> best_serial(static_cast<size_t>(rows));
  std::vector<double> best_parallel(static_cast<size_t>(rows));
  NearestCentroids(cols.data(), rows, d, centers.data(), k, idx_serial.data(),
                   best_serial.data(), &serial);
  NearestCentroids(cols.data(), rows, d, centers.data(), k,
                   idx_parallel.data(), best_parallel.data(), &parallel);
  EXPECT_EQ(idx_serial, idx_parallel);
  EXPECT_EQ(best_serial, best_parallel);
}

TEST(KernelsParallel, GemvColumnsDispatchBitwiseEqualAcrossThreads) {
  Rng rng(11);
  const int64_t rows = 300000;
  const int64_t d = 7;  // 2*rows*d = 4.2M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto w = RandomVector(static_cast<size_t>(d), rng);
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  std::vector<double> y_serial(static_cast<size_t>(rows));
  std::vector<double> y_parallel(static_cast<size_t>(rows));
  GemvColumns(cols.data(), rows, d, nullptr, w.data(), 1.5, y_serial.data(),
              &serial);
  GemvColumns(cols.data(), rows, d, nullptr, w.data(), 1.5, y_parallel.data(),
              &parallel);
  EXPECT_EQ(y_serial, y_parallel);
}

// --- argmin semantics ------------------------------------------------------

TEST(KernelsArgmin, TiesBreakTowardLowestIndex) {
  // Two identical centers: every row is equidistant, so the argmin must be
  // center 0 for all rows.
  const int64_t rows = 600;  // spans multiple argmin row blocks (256)
  const int64_t d = 2;
  std::vector<double> values(static_cast<size_t>(rows * d));
  Rng rng(12);
  for (double& v : values) {
    v = rng.Gaussian();
  }
  const auto cols = Columns(values, rows, d);
  const std::vector<double> centers = {0.5, -0.5, 0.5, -0.5};
  std::vector<int64_t> idx(static_cast<size_t>(rows), -1);
  NearestCentroids(cols.data(), rows, d, centers.data(), 2, idx.data(),
                   nullptr);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_EQ(idx[static_cast<size_t>(r)], 0) << "row " << r;
  }
}

// --- nesting policy --------------------------------------------------------

TEST(KernelsNesting, SuppressedOnPoolWorkers) {
  EXPECT_FALSE(ThreadPool::InAnyPoolWorker());
  KernelOptions eight;
  eight.num_threads = 8;
  EXPECT_FALSE(ParallelismSuppressed(&eight));
  KernelOptions one;
  one.num_threads = 1;
  EXPECT_TRUE(ParallelismSuppressed(&one));
  ThreadPool pool(2);
  bool suppressed_inside = false;
  pool.Submit([&]() { suppressed_inside = ParallelismSuppressed(&eight); });
  pool.Wait();
  EXPECT_TRUE(suppressed_inside);
}

TEST(KernelsNesting, DispatchFromPoolWorkerMatchesSerialBits) {
  // A kernel call made from an executor-style pool worker must degrade to
  // the serial blocked path and produce identical bits.
  Rng rng(13);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_outside(static_cast<size_t>(m * n));
  std::vector<double> c_inside(static_cast<size_t>(m * n));
  KernelOptions eight;
  eight.num_threads = 8;
  Gemm(a.data(), b.data(), c_outside.data(), m, k, n, &eight);
  ThreadPool pool(2);
  pool.Submit([&]() {
    Gemm(a.data(), b.data(), c_inside.data(), m, k, n, &eight);
  });
  pool.Wait();
  EXPECT_EQ(c_outside, c_inside);
}

TEST(KernelsScope, InstallsAndRestoresThreadLocalOptions) {
  EXPECT_EQ(CurrentOptions().num_threads, 1);
  {
    KernelOptions opts;
    opts.num_threads = 6;
    KernelScope scope(opts);
    EXPECT_EQ(CurrentOptions().num_threads, 6);
    {
      KernelOptions inner;
      inner.num_threads = 2;
      KernelScope nested(inner);
      EXPECT_EQ(CurrentOptions().num_threads, 2);
    }
    EXPECT_EQ(CurrentOptions().num_threads, 6);
  }
  EXPECT_EQ(CurrentOptions().num_threads, 1);
}

// --- simd tier --------------------------------------------------------------
// The simd:: tier fixes its own 8-lane-banked accumulation order, so it may
// differ from ref:: within a reduction-length tolerance but must be
// deterministic: the same bits from any row partition, at any thread count.
// Suites skip when the CPU lacks the ISA this build's simd tier targets
// (calling into simd:: there would execute unsupported instructions).

// Sets HYPPO_SIMD for the lifetime of a scope and refreshes the cached
// dispatcher config; restores the previous value (or unset state) on exit.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prev = std::getenv("HYPPO_SIMD");
    had_previous_ = prev != nullptr;
    if (had_previous_) {
      saved_ = prev;
    }
    if (value == nullptr) {
      ::unsetenv("HYPPO_SIMD");
    } else {
      ::setenv("HYPPO_SIMD", value, 1);
    }
    RefreshSimdConfig();
  }
  ~ScopedSimdEnv() {
    if (had_previous_) {
      ::setenv("HYPPO_SIMD", saved_.c_str(), 1);
    } else {
      ::unsetenv("HYPPO_SIMD");
    }
    RefreshSimdConfig();
  }
  ScopedSimdEnv(const ScopedSimdEnv&) = delete;
  ScopedSimdEnv& operator=(const ScopedSimdEnv&) = delete;

 private:
  bool had_previous_ = false;
  std::string saved_;
};

class KernelsSimd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SimdRuntimeSupported()) {
      GTEST_SKIP() << "CPU lacks the '" << SimdBuildIsa()
                   << "' ISA the simd tier of this build targets";
    }
  }
};

TEST_F(KernelsSimd, GemmWithinToleranceOfReference) {
  Rng rng(20);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = RandomVector(static_cast<size_t>(s.m * s.k), rng);
    const auto b = RandomVector(static_cast<size_t>(s.k * s.n), rng);
    std::vector<double> c_ref(static_cast<size_t>(s.m * s.n), -1.0);
    std::vector<double> c_simd(static_cast<size_t>(s.m * s.n), -2.0);
    ref::Gemm(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    simd::Gemm(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
    EXPECT_LE(MaxAbsDiff(c_ref, c_simd),
              1e-12 * static_cast<double>(s.k + 1))
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST_F(KernelsSimd, GemvAndGemvColumnsWithinTolerance) {
  Rng rng(21);
  for (int64_t rows : {0, 1, 31, 97, 301}) {
    for (int64_t cols : {1, 4, 8, 9, 63, 300}) {
      const auto m = RandomVector(static_cast<size_t>(rows * cols), rng);
      const auto x = RandomVector(static_cast<size_t>(cols), rng);
      std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
      std::vector<double> y_simd(static_cast<size_t>(rows), -2.0);
      ref::Gemv(m.data(), rows, cols, x.data(), y_ref.data());
      simd::Gemv(m.data(), rows, cols, x.data(), y_simd.data());
      EXPECT_LE(MaxAbsDiff(y_ref, y_simd),
                1e-12 * static_cast<double>(cols + 1))
          << "rows=" << rows << " cols=" << cols;
      const auto values = Columns(m, rows, cols);
      const auto shift = RandomVector(static_cast<size_t>(cols), rng);
      ref::GemvColumns(values.data(), rows, cols, shift.data(), x.data(), 0.5,
                       y_ref.data());
      simd::GemvColumns(values.data(), rows, cols, shift.data(), x.data(),
                        0.5, y_simd.data());
      EXPECT_LE(MaxAbsDiff(y_ref, y_simd),
                1e-12 * static_cast<double>(cols + 1))
          << "columns rows=" << rows << " cols=" << cols;
    }
  }
}

TEST_F(KernelsSimd, GramAndDistancesWithinTolerance) {
  Rng rng(22);
  for (int64_t rows : {0, 1, 77, 501}) {
    for (int64_t d : {1, 2, 7, 8, 9, 17}) {
      const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
      const auto cols = Columns(values, rows, d);
      const auto shift = RandomVector(static_cast<size_t>(d), rng);
      const double bound = 1e-12 * static_cast<double>(rows + 1);
      std::vector<double> g_ref(static_cast<size_t>(d * d), -1.0);
      std::vector<double> g_simd(static_cast<size_t>(d * d), -2.0);
      ref::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                       g_ref.data());
      simd::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                        g_simd.data());
      EXPECT_LE(MaxAbsDiff(g_ref, g_simd), bound)
          << "gram rows=" << rows << " d=" << d;
      const int64_t k = 3;
      const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
      std::vector<double> sq_ref(static_cast<size_t>(rows * k), -1.0);
      std::vector<double> sq_simd(static_cast<size_t>(rows * k), -2.0);
      ref::PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                                    sq_ref.data());
      simd::PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                                     sq_simd.data());
      EXPECT_LE(MaxAbsDiff(sq_ref, sq_simd),
                1e-12 * static_cast<double>(d + 1))
          << "distances rows=" << rows << " d=" << d;
    }
  }
}

TEST_F(KernelsSimd, FusedReductionsWithinTolerance) {
  Rng rng(23);
  for (int64_t n : {0, 1, 2, 7, 8, 9, 63, 1000}) {
    const auto x = RandomVector(static_cast<size_t>(n), rng);
    const auto y = RandomVector(static_cast<size_t>(n), rng);
    const double bound = 1e-12 * static_cast<double>(n + 1);
    double dot_naive = 0.0;
    double sum_naive = 0.0;
    double sq_naive = 0.0;
    double shifted_dot_naive = 0.0;
    double shifted_sq_naive = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      dot_naive += x[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
      sum_naive += x[static_cast<size_t>(i)];
      sq_naive += x[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
      shifted_dot_naive +=
          (x[static_cast<size_t>(i)] - 0.5) * y[static_cast<size_t>(i)];
      const double dv = x[static_cast<size_t>(i)] - 0.5;
      shifted_sq_naive += dv * dv;
    }
    EXPECT_NEAR(simd::Dot(x.data(), y.data(), n), dot_naive, bound);
    EXPECT_NEAR(simd::Sum(x.data(), n), sum_naive, bound);
    EXPECT_NEAR(simd::ShiftedDot(x.data(), 0.5, y.data(), n),
                shifted_dot_naive, bound);
    EXPECT_NEAR(simd::ShiftedSumSq(x.data(), 0.5, n), shifted_sq_naive,
                bound);
    double sum_out = -1.0;
    double sq_out = -1.0;
    simd::SumAndSumSq(x.data(), n, &sum_out, &sq_out);
    EXPECT_NEAR(sum_out, sum_naive, bound);
    EXPECT_NEAR(sq_out, sq_naive, bound);
  }
}

TEST_F(KernelsSimd, ElementwiseOpsBitwiseMatchNaive) {
  // Axpy/ShiftedAxpy/Multiply perform exactly the per-element mul-then-add
  // sequence of the reference (no contraction), so equality is exact.
  Rng rng(24);
  const int64_t n = 261;  // 8-lane main loop plus a 5-element tail
  const auto x = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_kernel = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_naive = y_kernel;
  simd::Axpy(-0.75, x.data(), y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] += -0.75 * x[static_cast<size_t>(i)];
  }
  EXPECT_EQ(y_kernel, y_naive);
  simd::ShiftedAxpy(0.5, x.data(), 0.25, y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] +=
        0.5 * (x[static_cast<size_t>(i)] - 0.25);
  }
  EXPECT_EQ(y_kernel, y_naive);
  std::vector<double> product(static_cast<size_t>(n));
  simd::Multiply(x.data(), y_kernel.data(), product.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(product[static_cast<size_t>(i)],
              x[static_cast<size_t>(i)] * y_kernel[static_cast<size_t>(i)]);
  }
}

TEST_F(KernelsSimd, RowPartitionInvariantBitwise) {
  // Chunking GemmRows at arbitrary row boundaries must reproduce the
  // single-call bits: this is the invariant the parallel driver relies on.
  Rng rng(25);
  const int64_t m = 53;
  const int64_t k = 67;
  const int64_t n = 41;
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_whole(static_cast<size_t>(m * n), -1.0);
  std::vector<double> c_chunked(static_cast<size_t>(m * n), -2.0);
  simd::Gemm(a.data(), b.data(), c_whole.data(), m, k, n);
  const int64_t boundaries[] = {0, 1, 7, 12, 30, 31, 53};
  for (size_t i = 0; i + 1 < std::size(boundaries); ++i) {
    simd::GemmRows(a.data(), b.data(), c_chunked.data(), m, k, n,
                   boundaries[i], boundaries[i + 1]);
  }
  EXPECT_EQ(c_whole, c_chunked);
}

TEST_F(KernelsSimd, NearestCentroidsArgminBitwiseMatchesBlockedTier) {
  // The simd tier's squared distances round differently (fma), but its
  // argmin scan fixes the same semantics as every other tier (ascending
  // centers, strict '<'), so the index outputs must agree exactly. The
  // shape spans the 8-row vector body plus a scalar tail.
  Rng rng(30);
  const int64_t rows = 603;
  const int64_t d = 5;
  const int64_t k = 7;
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
  KernelOptions no_simd;
  no_simd.num_threads = 1;
  no_simd.allow_simd = false;
  std::vector<int64_t> idx_blocked(static_cast<size_t>(rows), -1);
  std::vector<int64_t> idx_simd(static_cast<size_t>(rows), -2);
  std::vector<double> sq_blocked(static_cast<size_t>(rows), -1.0);
  std::vector<double> sq_simd(static_cast<size_t>(rows), -2.0);
  NearestCentroids(cols.data(), rows, d, centers.data(), k,
                   idx_blocked.data(), sq_blocked.data(), &no_simd);
  simd::NearestCentroids(cols.data(), rows, d, centers.data(), k,
                         idx_simd.data(), sq_simd.data());
  EXPECT_EQ(idx_blocked, idx_simd);
  EXPECT_LE(MaxAbsDiff(sq_blocked, sq_simd),
            1e-12 * static_cast<double>(d + 1));
  // The fused kernel's minimum must be bitwise consistent with the simd
  // tier's own distance matrix.
  std::vector<double> dist(static_cast<size_t>(rows * k));
  simd::PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                                 dist.data());
  for (int64_t r = 0; r < rows; ++r) {
    const size_t row = static_cast<size_t>(r);
    EXPECT_EQ(sq_simd[row],
              dist[static_cast<size_t>(r * k + idx_simd[row])])
        << "row " << r;
  }
}

TEST_F(KernelsSimd, NearestCentroidsTiesBreakTowardLowestIndex) {
  // Duplicated centers produce bitwise-equal distances in every tier, so
  // the tie must resolve to the lowest index in both the vector body and
  // the scalar tail.
  Rng rng(31);
  const int64_t rows = 603;
  const int64_t d = 3;
  std::vector<double> values(static_cast<size_t>(rows * d));
  for (double& v : values) {
    v = rng.Gaussian();
  }
  const auto cols = Columns(values, rows, d);
  // centers 0 and 2 are identical; 1 is pushed far away so the duplicate
  // pair always wins and the tie is exercised on every row.
  const std::vector<double> centers = {0.25, -0.5, 1.0,  //
                                       50.0, 50.0, 50.0,  //
                                       0.25, -0.5, 1.0};
  std::vector<int64_t> idx(static_cast<size_t>(rows), -1);
  simd::NearestCentroids(cols.data(), rows, d, centers.data(), 3, idx.data(),
                         nullptr);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_EQ(idx[static_cast<size_t>(r)], 0) << "row " << r;
  }
}

TEST_F(KernelsSimd, NearestCentroidsRowPartitionInvariantBitwise) {
  // Chunking at arbitrary row boundaries must reproduce the single-call
  // bits — the invariant the parallel driver relies on.
  Rng rng(32);
  const int64_t rows = 531;
  const int64_t d = 4;
  const int64_t k = 5;
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
  std::vector<int64_t> idx_whole(static_cast<size_t>(rows), -1);
  std::vector<int64_t> idx_chunked(static_cast<size_t>(rows), -2);
  std::vector<double> sq_whole(static_cast<size_t>(rows), -1.0);
  std::vector<double> sq_chunked(static_cast<size_t>(rows), -2.0);
  simd::NearestCentroids(cols.data(), rows, d, centers.data(), k,
                         idx_whole.data(), sq_whole.data());
  const int64_t boundaries[] = {0, 1, 9, 16, 250, 257, 530, 531};
  for (size_t i = 0; i + 1 < std::size(boundaries); ++i) {
    simd::NearestCentroidsRows(cols.data(), rows, d, centers.data(), k,
                               idx_chunked.data(), sq_chunked.data(),
                               boundaries[i], boundaries[i + 1]);
  }
  EXPECT_EQ(idx_whole, idx_chunked);
  EXPECT_EQ(sq_whole, sq_chunked);
}

TEST_F(KernelsSimd, NearestCentroidsDispatchBitwiseEqualAcrossThreads) {
  // With HYPPO_SIMD forced on, the dispatcher routes to the simd argmin
  // and must produce the direct-call bits at any thread count.
  ScopedSimdEnv env("on");
  ASSERT_TRUE(SimdEnabled());
  Rng rng(33);
  const int64_t rows = 60000;
  const int64_t d = 8;
  const int64_t k = 3;  // 3*rows*d*k = 4.3M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
  std::vector<int64_t> idx_tier(static_cast<size_t>(rows));
  std::vector<double> sq_tier(static_cast<size_t>(rows));
  simd::NearestCentroids(cols.data(), rows, d, centers.data(), k,
                         idx_tier.data(), sq_tier.data());
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  std::vector<int64_t> idx_serial(static_cast<size_t>(rows));
  std::vector<int64_t> idx_parallel(static_cast<size_t>(rows));
  std::vector<double> sq_serial(static_cast<size_t>(rows));
  std::vector<double> sq_parallel(static_cast<size_t>(rows));
  NearestCentroids(cols.data(), rows, d, centers.data(), k,
                   idx_serial.data(), sq_serial.data(), &serial);
  NearestCentroids(cols.data(), rows, d, centers.data(), k,
                   idx_parallel.data(), sq_parallel.data(), &parallel);
  EXPECT_EQ(idx_tier, idx_serial);
  EXPECT_EQ(idx_serial, idx_parallel);
  EXPECT_EQ(sq_tier, sq_serial);
  EXPECT_EQ(sq_serial, sq_parallel);
}

TEST_F(KernelsSimd, DispatchBitwiseEqualAcrossThreadsAndMatchesTier) {
  // With HYPPO_SIMD forced on, the dispatcher must route to the simd tier
  // (bits equal to a direct simd:: call) and stay bitwise stable across
  // thread counts.
  ScopedSimdEnv env("on");
  ASSERT_TRUE(SimdEnabled());
  Rng rng(26);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;  // above the parallel work threshold
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_tier(static_cast<size_t>(m * n));
  std::vector<double> c_serial(static_cast<size_t>(m * n));
  std::vector<double> c_parallel(static_cast<size_t>(m * n));
  simd::Gemm(a.data(), b.data(), c_tier.data(), m, k, n);
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  Gemm(a.data(), b.data(), c_serial.data(), m, k, n, &serial);
  Gemm(a.data(), b.data(), c_parallel.data(), m, k, n, &parallel);
  EXPECT_EQ(c_tier, c_serial);
  EXPECT_EQ(c_serial, c_parallel);
}

TEST_F(KernelsSimd, AllowSimdFalseForcesBlockedTier) {
  ScopedSimdEnv env("on");
  ASSERT_TRUE(SimdEnabled());
  Rng rng(27);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_blocked(static_cast<size_t>(m * n));
  std::vector<double> c_serial(static_cast<size_t>(m * n));
  std::vector<double> c_parallel(static_cast<size_t>(m * n));
  blocked::Gemm(a.data(), b.data(), c_blocked.data(), m, k, n);
  KernelOptions serial;
  serial.num_threads = 1;
  serial.allow_simd = false;
  KernelOptions parallel;
  parallel.num_threads = 8;
  parallel.allow_simd = false;
  Gemm(a.data(), b.data(), c_serial.data(), m, k, n, &serial);
  Gemm(a.data(), b.data(), c_parallel.data(), m, k, n, &parallel);
  EXPECT_EQ(c_blocked, c_serial);
  EXPECT_EQ(c_serial, c_parallel);
}

// --- dispatcher configuration ----------------------------------------------

TEST(KernelsSimdConfig, EveryEnvOverrideValueDispatchesCorrectly) {
  // Iterate every HYPPO_SIMD value the dispatcher understands so no tier
  // is silently untested on any machine: each setting must yield an
  // internally consistent config and a correct dispatch result.
  Rng rng(28);
  const int64_t m = 33;
  const int64_t k = 48;
  const int64_t n = 17;  // above the blocked work threshold, below parallel
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_ref(static_cast<size_t>(m * n), -1.0);
  ref::Gemm(a.data(), b.data(), c_ref.data(), m, k, n);
  const char* kValues[] = {"off", "sse2", "avx2", "avx512", "on", nullptr};
  for (const char* value : kValues) {
    ScopedSimdEnv env(value);
    const char* label = value != nullptr ? value : "(unset)";
    if (SimdEnabled()) {
      // The dispatcher may only route to simd:: when the CPU supports the
      // ISA the tier was compiled for.
      EXPECT_TRUE(SimdRuntimeSupported()) << "HYPPO_SIMD=" << label;
    }
    if (value != nullptr && std::strcmp(value, "off") == 0) {
      EXPECT_FALSE(SimdEnabled()) << "HYPPO_SIMD=off must disable the tier";
    }
    std::vector<double> c(static_cast<size_t>(m * n), -2.0);
    Gemm(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_LE(MaxAbsDiff(c_ref, c), 1e-12 * static_cast<double>(k + 1))
        << "HYPPO_SIMD=" << label;
  }
}

TEST(KernelsSimdConfig, RefreshRestoresBaselineAfterOverride) {
  const bool baseline = SimdEnabled();
  {
    ScopedSimdEnv env("off");
    EXPECT_FALSE(SimdEnabled());
  }
  EXPECT_EQ(SimdEnabled(), baseline);
}

// --- degenerate shapes across tiers -----------------------------------------
// Empty and single-element shapes take the tail paths in every tier; there
// a reduction has at most one term, so all tiers must agree bitwise.

TEST(KernelsDegenerate, EmptyAndSingleElementShapesAgreeAcrossTiers) {
  const bool simd_ok = SimdRuntimeSupported();
  const GemmShape degenerate[] = {{0, 5, 4}, {3, 0, 4}, {3, 7, 0}, {1, 1, 1}};
  Rng rng(29);
  for (const GemmShape& s : degenerate) {
    const auto a = RandomVector(static_cast<size_t>(s.m * s.k), rng);
    const auto b = RandomVector(static_cast<size_t>(s.k * s.n), rng);
    std::vector<double> c_ref(static_cast<size_t>(s.m * s.n), -1.0);
    std::vector<double> c_blocked(static_cast<size_t>(s.m * s.n), -2.0);
    ref::Gemm(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    blocked::Gemm(a.data(), b.data(), c_blocked.data(), s.m, s.k, s.n);
    EXPECT_EQ(c_ref, c_blocked) << "m=" << s.m << " k=" << s.k
                                << " n=" << s.n;
    if (simd_ok) {
      std::vector<double> c_simd(static_cast<size_t>(s.m * s.n), -3.0);
      simd::Gemm(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
      EXPECT_EQ(c_ref, c_simd)
          << "simd m=" << s.m << " k=" << s.k << " n=" << s.n;
    }
  }
  // Column-pointer kernels: zero rows and a single cell. Bias stays 0.0
  // because the simd tier fuses w*v+bias into one fma (a single rounding)
  // where ref rounds the product first; exactness across tiers only holds
  // when accumulation starts from zero.
  for (int64_t rows : {int64_t{0}, int64_t{1}}) {
    const int64_t d = 1;
    const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
    const auto cols = Columns(values, rows, d);
    const auto w = RandomVector(static_cast<size_t>(d), rng);
    std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
    std::vector<double> y_blocked(static_cast<size_t>(rows), -2.0);
    ref::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                     y_ref.data());
    blocked::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                         y_blocked.data());
    EXPECT_EQ(y_ref, y_blocked) << "rows=" << rows;
    std::vector<double> g_ref(static_cast<size_t>(d * d), -1.0);
    std::vector<double> g_blocked(static_cast<size_t>(d * d), -2.0);
    ref::GramColumns(cols.data(), rows, d, nullptr, nullptr, g_ref.data());
    blocked::GramColumns(cols.data(), rows, d, nullptr, nullptr,
                         g_blocked.data());
    EXPECT_EQ(g_ref, g_blocked) << "gram rows=" << rows;
    if (simd_ok) {
      std::vector<double> y_simd(static_cast<size_t>(rows), -3.0);
      simd::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                        y_simd.data());
      EXPECT_EQ(y_ref, y_simd) << "simd rows=" << rows;
      std::vector<double> g_simd(static_cast<size_t>(d * d), -3.0);
      simd::GramColumns(cols.data(), rows, d, nullptr, nullptr,
                        g_simd.data());
      EXPECT_EQ(g_ref, g_simd) << "simd gram rows=" << rows;
    }
  }
}

// --- non-finite propagation -------------------------------------------------
// A NaN anywhere in a row poisons that row's outputs in every tier; a +inf
// against strictly positive multiplicands saturates the row to +inf in
// every tier. Reassociation never changes either classification, so the
// tiers must agree on exactly which outputs are NaN, +inf, or finite.

TEST(KernelsNonFinite, NaNAndInfPropagateIdenticallyAcrossTiers) {
  const bool simd_ok = SimdRuntimeSupported();
  const int64_t m = 9;
  const int64_t k = 40;
  const int64_t n = 24;
  Rng rng(30);
  auto a = RandomVector(static_cast<size_t>(m * k), rng);
  std::vector<double> b(static_cast<size_t>(k * n));
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = 0.5 + 0.25 * static_cast<double>(i % 7);  // strictly positive
  }
  const int64_t nan_row = 2;
  const int64_t inf_row = 6;
  a[static_cast<size_t>(nan_row * k + 5)] =
      std::numeric_limits<double>::quiet_NaN();
  a[static_cast<size_t>(inf_row * k + 11)] =
      std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> results;
  std::vector<std::string> labels;
  results.emplace_back(static_cast<size_t>(m * n), -1.0);
  labels.emplace_back("ref");
  ref::Gemm(a.data(), b.data(), results.back().data(), m, k, n);
  results.emplace_back(static_cast<size_t>(m * n), -2.0);
  labels.emplace_back("blocked");
  blocked::Gemm(a.data(), b.data(), results.back().data(), m, k, n);
  if (simd_ok) {
    results.emplace_back(static_cast<size_t>(m * n), -3.0);
    labels.emplace_back("simd");
    simd::Gemm(a.data(), b.data(), results.back().data(), m, k, n);
  }
  results.emplace_back(static_cast<size_t>(m * n), -4.0);
  labels.emplace_back("dispatch");
  Gemm(a.data(), b.data(), results.back().data(), m, k, n);
  for (size_t t = 0; t < results.size(); ++t) {
    const std::vector<double>& c = results[t];
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const double v = c[static_cast<size_t>(i * n + j)];
        if (i == nan_row) {
          EXPECT_TRUE(std::isnan(v))
              << labels[t] << " row " << i << " col " << j;
        } else if (i == inf_row) {
          EXPECT_EQ(v, std::numeric_limits<double>::infinity())
              << labels[t] << " row " << i << " col " << j;
        } else {
          EXPECT_TRUE(std::isfinite(v))
              << labels[t] << " row " << i << " col " << j;
        }
      }
    }
  }
  // Fused reductions propagate NaN identically.
  std::vector<double> x(64, 1.0);
  x[17] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> y(64, 2.0);
  EXPECT_TRUE(std::isnan(Dot(x.data(), y.data(), 64)));
  EXPECT_TRUE(std::isnan(Sum(x.data(), 64)));
  if (simd_ok) {
    EXPECT_TRUE(std::isnan(simd::Dot(x.data(), y.data(), 64)));
    EXPECT_TRUE(std::isnan(simd::Sum(x.data(), 64)));
  }
}

}  // namespace
}  // namespace hyppo::ml::kernels
