#include "ml/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace hyppo::ml::kernels {
namespace {

std::vector<double> RandomVector(size_t n, Rng& rng) {
  std::vector<double> out(n);
  for (double& v : out) {
    v = rng.Gaussian();
  }
  return out;
}

// Column-pointer array over a column-major buffer (rows per column).
std::vector<const double*> Columns(const std::vector<double>& values,
                                   int64_t rows, int64_t cols) {
  std::vector<const double*> out(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    out[static_cast<size_t>(c)] = values.data() + c * rows;
  }
  return out;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

// Shapes deliberately straddle the blocking parameters (48/256 for GEMM,
// 16 for Gram tiles, 256 for distance row blocks) and include the empty
// and single-row degenerate cases.
struct GemmShape {
  int64_t m, k, n;
};
const GemmShape kGemmShapes[] = {{0, 5, 4},   {1, 1, 1},   {3, 7, 2},
                                 {48, 16, 8}, {49, 17, 9}, {97, 300, 31},
                                 {53, 257, 65}};

// --- bitwise contracts -----------------------------------------------------
// blocked::Gemm, blocked::GemvColumns, and the blocked distance kernel fix
// the same per-element accumulation order as the reference, so they must
// agree bit for bit, not just within tolerance.

TEST(KernelsGemm, BlockedMatchesReferenceBitwise) {
  Rng rng(1);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = RandomVector(static_cast<size_t>(s.m * s.k), rng);
    const auto b = RandomVector(static_cast<size_t>(s.k * s.n), rng);
    std::vector<double> c_ref(static_cast<size_t>(s.m * s.n), -1.0);
    std::vector<double> c_blocked(static_cast<size_t>(s.m * s.n), -2.0);
    ref::Gemm(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    blocked::Gemm(a.data(), b.data(), c_blocked.data(), s.m, s.k, s.n);
    for (size_t i = 0; i < c_ref.size(); ++i) {
      ASSERT_EQ(c_ref[i], c_blocked[i])
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at " << i;
    }
  }
}

TEST(KernelsGemvColumns, BlockedMatchesReferenceBitwise) {
  Rng rng(2);
  for (int64_t rows : {0, 1, 7, 255, 256, 301}) {
    for (int64_t d : {1, 3, 16, 33}) {
      const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
      const auto cols = Columns(values, rows, d);
      const auto w = RandomVector(static_cast<size_t>(d), rng);
      const auto shift = RandomVector(static_cast<size_t>(d), rng);
      std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
      std::vector<double> y_blocked(static_cast<size_t>(rows), -2.0);
      ref::GemvColumns(cols.data(), rows, d, shift.data(), w.data(), 0.25,
                       y_ref.data());
      blocked::GemvColumns(cols.data(), rows, d, shift.data(), w.data(), 0.25,
                           y_blocked.data());
      for (size_t i = 0; i < y_ref.size(); ++i) {
        ASSERT_EQ(y_ref[i], y_blocked[i]) << "rows=" << rows << " d=" << d;
      }
      // Null shift variant.
      ref::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                       y_ref.data());
      blocked::GemvColumns(cols.data(), rows, d, nullptr, w.data(), 0.0,
                           y_blocked.data());
      for (size_t i = 0; i < y_ref.size(); ++i) {
        ASSERT_EQ(y_ref[i], y_blocked[i]);
      }
    }
  }
}

TEST(KernelsDistances, BlockedMatchesReferenceBitwise) {
  Rng rng(3);
  for (int64_t rows : {0, 1, 100, 256, 511}) {
    for (int64_t d : {1, 5, 17}) {
      for (int64_t k : {1, 3, 8}) {
        const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
        const auto cols = Columns(values, rows, d);
        const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
        std::vector<double> sq_ref(static_cast<size_t>(rows * k), -1.0);
        std::vector<double> sq_blocked(static_cast<size_t>(rows * k), -2.0);
        ref::PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                                      sq_ref.data());
        blocked::PairwiseSquaredDistancesRows(cols.data(), rows, d,
                                              centers.data(), k,
                                              sq_blocked.data(), 0, rows);
        for (size_t i = 0; i < sq_ref.size(); ++i) {
          ASSERT_EQ(sq_ref[i], sq_blocked[i])
              << "rows=" << rows << " d=" << d << " k=" << k;
        }
      }
    }
  }
}

// --- tolerance contracts ---------------------------------------------------
// The unrolled reductions (Gemv rows, Gram, Dot, Sum) change only the
// association, so ref and blocked agree within a max-abs-diff bound that
// scales with the reduction length.

TEST(KernelsGemv, BlockedWithinTolerance) {
  Rng rng(4);
  for (int64_t rows : {0, 1, 31, 97}) {
    for (int64_t cols : {1, 4, 63, 300}) {
      const auto m = RandomVector(static_cast<size_t>(rows * cols), rng);
      const auto x = RandomVector(static_cast<size_t>(cols), rng);
      std::vector<double> y_ref(static_cast<size_t>(rows), -1.0);
      std::vector<double> y_blocked(static_cast<size_t>(rows), -2.0);
      ref::Gemv(m.data(), rows, cols, x.data(), y_ref.data());
      blocked::Gemv(m.data(), rows, cols, x.data(), y_blocked.data());
      EXPECT_LE(MaxAbsDiff(y_ref, y_blocked),
                1e-12 * static_cast<double>(cols + 1))
          << "rows=" << rows << " cols=" << cols;
    }
  }
}

TEST(KernelsGram, BlockedWithinTolerance) {
  Rng rng(5);
  for (int64_t rows : {0, 1, 77, 501}) {
    for (int64_t d : {1, 2, 15, 16, 17, 40}) {
      const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
      const auto cols = Columns(values, rows, d);
      const auto shift = RandomVector(static_cast<size_t>(d), rng);
      const auto weight = RandomVector(static_cast<size_t>(rows), rng);
      std::vector<double> g_ref(static_cast<size_t>(d * d), -1.0);
      std::vector<double> g_blocked(static_cast<size_t>(d * d), -2.0);
      const double bound = 1e-12 * static_cast<double>(rows + 1);
      ref::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                       g_ref.data());
      blocked::GramColumns(cols.data(), rows, d, shift.data(), nullptr,
                           g_blocked.data());
      EXPECT_LE(MaxAbsDiff(g_ref, g_blocked), bound)
          << "rows=" << rows << " d=" << d;
      // Weighted (Hessian-style) variant, no shift.
      ref::GramColumns(cols.data(), rows, d, nullptr, weight.data(),
                       g_ref.data());
      blocked::GramColumns(cols.data(), rows, d, nullptr, weight.data(),
                           g_blocked.data());
      EXPECT_LE(MaxAbsDiff(g_ref, g_blocked), bound)
          << "weighted rows=" << rows << " d=" << d;
    }
  }
}

TEST(KernelsFused, ReductionsWithinTolerance) {
  Rng rng(6);
  for (int64_t n : {0, 1, 2, 3, 4, 5, 63, 1000}) {
    const auto x = RandomVector(static_cast<size_t>(n), rng);
    const auto y = RandomVector(static_cast<size_t>(n), rng);
    const double bound = 1e-12 * static_cast<double>(n + 1);
    double dot_naive = 0.0;
    double sum_naive = 0.0;
    double sq_naive = 0.0;
    double shifted_dot_naive = 0.0;
    double shifted_sq_naive = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      dot_naive += x[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
      sum_naive += x[static_cast<size_t>(i)];
      sq_naive += x[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
      shifted_dot_naive +=
          (x[static_cast<size_t>(i)] - 0.5) * y[static_cast<size_t>(i)];
      const double dv = x[static_cast<size_t>(i)] - 0.5;
      shifted_sq_naive += dv * dv;
    }
    EXPECT_NEAR(Dot(x.data(), y.data(), n), dot_naive, bound);
    EXPECT_NEAR(Sum(x.data(), n), sum_naive, bound);
    EXPECT_NEAR(ShiftedDot(x.data(), 0.5, y.data(), n), shifted_dot_naive,
                bound);
    EXPECT_NEAR(ShiftedSumSq(x.data(), 0.5, n), shifted_sq_naive, bound);
    double sum_out = -1.0;
    double sq_out = -1.0;
    SumAndSumSq(x.data(), n, &sum_out, &sq_out);
    EXPECT_NEAR(sum_out, sum_naive, bound);
    EXPECT_NEAR(sq_out, sq_naive, bound);
  }
}

TEST(KernelsFused, AxpyAndMultiplyExact) {
  Rng rng(7);
  const int64_t n = 257;
  const auto x = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_kernel = RandomVector(static_cast<size_t>(n), rng);
  std::vector<double> y_naive = y_kernel;
  Axpy(-0.75, x.data(), y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] += -0.75 * x[static_cast<size_t>(i)];
  }
  EXPECT_EQ(y_kernel, y_naive);
  ShiftedAxpy(0.5, x.data(), 0.25, y_kernel.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    y_naive[static_cast<size_t>(i)] +=
        0.5 * (x[static_cast<size_t>(i)] - 0.25);
  }
  EXPECT_EQ(y_kernel, y_naive);
  std::vector<double> product(static_cast<size_t>(n));
  Multiply(x.data(), y_kernel.data(), product.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(product[static_cast<size_t>(i)],
              x[static_cast<size_t>(i)] * y_kernel[static_cast<size_t>(i)]);
  }
}

// --- parallel dispatch determinism -----------------------------------------
// Shapes above the parallel threshold (4M flop estimate): dispatch with 8
// threads must produce exactly the bits the serial dispatch produces.
// These run under TSan in CI, so they double as race tests for the
// row/tile partitioning (including the Gram lower-triangle mirror).

TEST(KernelsParallel, GemmDispatchBitwiseEqualAcrossThreads) {
  Rng rng(8);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;  // 2*m*k*n ~ 4.3M flops: parallel path engages
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_serial(static_cast<size_t>(m * n));
  std::vector<double> c_parallel(static_cast<size_t>(m * n));
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  Gemm(a.data(), b.data(), c_serial.data(), m, k, n, &serial);
  Gemm(a.data(), b.data(), c_parallel.data(), m, k, n, &parallel);
  EXPECT_EQ(c_serial, c_parallel);
}

TEST(KernelsParallel, GramDispatchBitwiseEqualAcrossThreads) {
  Rng rng(9);
  const int64_t rows = 20000;
  const int64_t d = 15;  // rows*d*d = 4.5M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto shift = RandomVector(static_cast<size_t>(d), rng);
  std::vector<double> g_serial(static_cast<size_t>(d * d));
  std::vector<double> g_parallel(static_cast<size_t>(d * d));
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  GramColumns(cols.data(), rows, d, shift.data(), nullptr, g_serial.data(),
              &serial);
  GramColumns(cols.data(), rows, d, shift.data(), nullptr, g_parallel.data(),
              &parallel);
  EXPECT_EQ(g_serial, g_parallel);
}

TEST(KernelsParallel, DistanceAndArgminDispatchBitwiseEqualAcrossThreads) {
  Rng rng(10);
  const int64_t rows = 60000;
  const int64_t d = 8;
  const int64_t k = 3;  // 3*rows*d*k = 4.3M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto centers = RandomVector(static_cast<size_t>(k * d), rng);
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  std::vector<double> sq_serial(static_cast<size_t>(rows * k));
  std::vector<double> sq_parallel(static_cast<size_t>(rows * k));
  PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                           sq_serial.data(), &serial);
  PairwiseSquaredDistances(cols.data(), rows, d, centers.data(), k,
                           sq_parallel.data(), &parallel);
  EXPECT_EQ(sq_serial, sq_parallel);
  std::vector<int64_t> idx_serial(static_cast<size_t>(rows));
  std::vector<int64_t> idx_parallel(static_cast<size_t>(rows));
  std::vector<double> best_serial(static_cast<size_t>(rows));
  std::vector<double> best_parallel(static_cast<size_t>(rows));
  NearestCentroids(cols.data(), rows, d, centers.data(), k, idx_serial.data(),
                   best_serial.data(), &serial);
  NearestCentroids(cols.data(), rows, d, centers.data(), k,
                   idx_parallel.data(), best_parallel.data(), &parallel);
  EXPECT_EQ(idx_serial, idx_parallel);
  EXPECT_EQ(best_serial, best_parallel);
}

TEST(KernelsParallel, GemvColumnsDispatchBitwiseEqualAcrossThreads) {
  Rng rng(11);
  const int64_t rows = 300000;
  const int64_t d = 7;  // 2*rows*d = 4.2M: parallel path engages
  const auto values = RandomVector(static_cast<size_t>(rows * d), rng);
  const auto cols = Columns(values, rows, d);
  const auto w = RandomVector(static_cast<size_t>(d), rng);
  KernelOptions serial;
  serial.num_threads = 1;
  KernelOptions parallel;
  parallel.num_threads = 8;
  std::vector<double> y_serial(static_cast<size_t>(rows));
  std::vector<double> y_parallel(static_cast<size_t>(rows));
  GemvColumns(cols.data(), rows, d, nullptr, w.data(), 1.5, y_serial.data(),
              &serial);
  GemvColumns(cols.data(), rows, d, nullptr, w.data(), 1.5, y_parallel.data(),
              &parallel);
  EXPECT_EQ(y_serial, y_parallel);
}

// --- argmin semantics ------------------------------------------------------

TEST(KernelsArgmin, TiesBreakTowardLowestIndex) {
  // Two identical centers: every row is equidistant, so the argmin must be
  // center 0 for all rows.
  const int64_t rows = 600;  // spans multiple argmin row blocks (256)
  const int64_t d = 2;
  std::vector<double> values(static_cast<size_t>(rows * d));
  Rng rng(12);
  for (double& v : values) {
    v = rng.Gaussian();
  }
  const auto cols = Columns(values, rows, d);
  const std::vector<double> centers = {0.5, -0.5, 0.5, -0.5};
  std::vector<int64_t> idx(static_cast<size_t>(rows), -1);
  NearestCentroids(cols.data(), rows, d, centers.data(), 2, idx.data(),
                   nullptr);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_EQ(idx[static_cast<size_t>(r)], 0) << "row " << r;
  }
}

// --- nesting policy --------------------------------------------------------

TEST(KernelsNesting, SuppressedOnPoolWorkers) {
  EXPECT_FALSE(ThreadPool::InAnyPoolWorker());
  KernelOptions eight;
  eight.num_threads = 8;
  EXPECT_FALSE(ParallelismSuppressed(&eight));
  KernelOptions one;
  one.num_threads = 1;
  EXPECT_TRUE(ParallelismSuppressed(&one));
  ThreadPool pool(2);
  bool suppressed_inside = false;
  pool.Submit([&]() { suppressed_inside = ParallelismSuppressed(&eight); });
  pool.Wait();
  EXPECT_TRUE(suppressed_inside);
}

TEST(KernelsNesting, DispatchFromPoolWorkerMatchesSerialBits) {
  // A kernel call made from an executor-style pool worker must degrade to
  // the serial blocked path and produce identical bits.
  Rng rng(13);
  const int64_t m = 131;
  const int64_t k = 129;
  const int64_t n = 127;
  const auto a = RandomVector(static_cast<size_t>(m * k), rng);
  const auto b = RandomVector(static_cast<size_t>(k * n), rng);
  std::vector<double> c_outside(static_cast<size_t>(m * n));
  std::vector<double> c_inside(static_cast<size_t>(m * n));
  KernelOptions eight;
  eight.num_threads = 8;
  Gemm(a.data(), b.data(), c_outside.data(), m, k, n, &eight);
  ThreadPool pool(2);
  pool.Submit([&]() {
    Gemm(a.data(), b.data(), c_inside.data(), m, k, n, &eight);
  });
  pool.Wait();
  EXPECT_EQ(c_outside, c_inside);
}

TEST(KernelsScope, InstallsAndRestoresThreadLocalOptions) {
  EXPECT_EQ(CurrentOptions().num_threads, 1);
  {
    KernelOptions opts;
    opts.num_threads = 6;
    KernelScope scope(opts);
    EXPECT_EQ(CurrentOptions().num_threads, 6);
    {
      KernelOptions inner;
      inner.num_threads = 2;
      KernelScope nested(inner);
      EXPECT_EQ(CurrentOptions().num_threads, 2);
    }
    EXPECT_EQ(CurrentOptions().num_threads, 6);
  }
  EXPECT_EQ(CurrentOptions().num_threads, 1);
}

}  // namespace
}  // namespace hyppo::ml::kernels
