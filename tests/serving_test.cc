// Multi-tenant serving runtime (src/serving): differential correctness
// of concurrent sessions against isolated references, cross-session
// reuse accounting, admission control, stale-snapshot planning across
// compaction, and the one-live-manager-per-store-dir contract.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/verifier.h"
#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "serving/session_manager.h"
#include "storage/serialization.h"
#include "workload/datagen.h"
#include "workload/scenario.h"

namespace hyppo {
namespace {

namespace fs = std::filesystem;

// The step-th pipeline of session s: shared split + imputer + scaler
// preprocessing (identical across sessions and steps — the cross-session
// reuse surface), model hyper-parameters unique per (session, step).
Result<core::Pipeline> ServePipeline(int session, int step) {
  core::PipelineBuilder builder("serve-s" + std::to_string(session) + "-p" +
                                std::to_string(step));
  HYPPO_ASSIGN_OR_RETURN(NodeId data,
                         builder.LoadDataset("serving-unit", 160, 5));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  ml::Config impute;
  impute.Set("strategy", "mean");
  HYPPO_ASSIGN_OR_RETURN(
      NodeId imputer,
      builder.Fit("SimpleImputer", "skl.SimpleImputer", split.first, impute));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_i,
                         builder.Transform(imputer, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_i,
                         builder.Transform(imputer, split.second));
  HYPPO_ASSIGN_OR_RETURN(
      NodeId scaler,
      builder.Fit("StandardScaler", "skl.StandardScaler", train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s, builder.Transform(scaler, train_i));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s, builder.Transform(scaler, test_i));
  ml::Config model_config;
  model_config.SetInt("max_depth", 2 + 3 * step + session);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model,
      builder.Fit("DecisionTreeClassifier", "skl.DecisionTreeClassifier",
                  train_s, model_config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

void RegisterServingDataset(core::Runtime* runtime) {
  runtime->RegisterDatasetGenerator(
      "serving-unit", []() { return workload::GenerateHiggs(160, 5, 7); });
}

// Serving options shared by the tests: real execution, verified plans,
// pinned implementations (byte-identity needs bitwise-equal payloads).
serving::ServingOptions BaseOptions() {
  serving::ServingOptions options;
  options.runtime.simulate = false;
  options.runtime.verify_plans = true;
  options.runtime.storage_budget_bytes = 1 << 20;
  options.runtime.max_recovery_attempts = 6;
  options.method.augment.use_equivalences = false;
  return options;
}

Result<std::map<std::string, std::string>> PayloadBytes(
    const std::map<std::string, storage::ArtifactPayload>& payloads) {
  std::map<std::string, std::string> bytes;
  for (const auto& [name, payload] : payloads) {
    HYPPO_ASSIGN_OR_RETURN(std::string serialized,
                           storage::SerializePayload(payload));
    bytes[name] = std::move(serialized);
  }
  return bytes;
}

// The isolated reference for one session: the same pipeline sequence run
// alone in a fresh single-tenant system with the same options.
Result<std::map<std::string, std::string>> IsolatedReference(
    int session, int num_pipelines) {
  core::HyppoSystem::Options options;
  options.runtime = BaseOptions().runtime;
  options.method = BaseOptions().method;
  core::HyppoSystem system(options);
  RegisterServingDataset(&system.runtime());
  std::map<std::string, storage::ArtifactPayload> payloads;
  for (int p = 0; p < num_pipelines; ++p) {
    HYPPO_ASSIGN_OR_RETURN(core::Pipeline pipeline,
                           ServePipeline(session, p));
    HYPPO_ASSIGN_OR_RETURN(core::HyppoSystem::RunReport report,
                           system.RunPipeline(pipeline));
    for (const auto& [name, payload] : report.target_payloads) {
      payloads[name] = payload;
    }
  }
  return PayloadBytes(payloads);
}

Status VerifyManagerHistory(const serving::SessionManager& manager) {
  const analysis::Verifier verifier;
  analysis::AnalysisReport report = verifier.VerifyHistory(
      manager.runtime().history(), &manager.runtime().dictionary(),
      manager.runtime().options().storage_budget_bytes);
  report.Merge(verifier.CheckStoreConsistency(manager.runtime().history(),
                                              manager.runtime().store()));
  if (!report.ok()) {
    return Status::Internal(report.ToString());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Differential: concurrent sessions sharing one history must produce,
// per session, byte-identical target payloads to that session running
// alone. Reuse across tenants may change *how* values are derived
// (loads instead of computes) but never *what* they are.

TEST(ServingTest, ConcurrentSessionsMatchIsolatedReferencesByteForByte) {
  constexpr int kSessions = 3;
  constexpr int kPipelines = 3;
  serving::SessionManager manager(BaseOptions());
  ASSERT_TRUE(manager.session_status().ok()) << manager.session_status();
  RegisterServingDataset(&manager.runtime());

  std::vector<serving::SessionRequest> requests;
  for (int s = 0; s < kSessions; ++s) {
    serving::SessionRequest request;
    request.session_id = "tenant-" + std::to_string(s);
    for (int p = 0; p < kPipelines; ++p) {
      auto pipeline = ServePipeline(s, p);
      ASSERT_TRUE(pipeline.ok()) << pipeline.status();
      request.pipelines.push_back(*std::move(pipeline));
    }
    requests.push_back(std::move(request));
  }
  const std::vector<serving::SessionReport> reports =
      manager.RunSessions(requests);
  ASSERT_EQ(reports.size(), static_cast<size_t>(kSessions));
  for (int s = 0; s < kSessions; ++s) {
    SCOPED_TRACE("session " + std::to_string(s));
    ASSERT_TRUE(reports[s].status.ok()) << reports[s].status;
    EXPECT_EQ(reports[s].pipelines_completed, kPipelines);
    auto served = PayloadBytes(reports[s].target_payloads);
    ASSERT_TRUE(served.ok()) << served.status();
    ASSERT_FALSE(served->empty());
    auto reference = IsolatedReference(s, kPipelines);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_EQ(*served, *reference);
  }
  EXPECT_TRUE(VerifyManagerHistory(manager).ok());
  const serving::SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_completed, kSessions);
  EXPECT_EQ(stats.pipelines_completed, kSessions * kPipelines);
}

// ---------------------------------------------------------------------------
// Reuse accounting. Run two sessions strictly in sequence so ownership
// is deterministic: everything the second session loads was materialized
// by the first, so all its reuse is cross-session.

TEST(ServingTest, SequentialSessionsCountCrossSessionReuse) {
  serving::SessionManager manager(BaseOptions());
  RegisterServingDataset(&manager.runtime());

  auto make_request = [](const std::string& id, int session) {
    serving::SessionRequest request;
    request.session_id = id;
    for (int p = 0; p < 2; ++p) {
      auto pipeline = ServePipeline(session, p);
      EXPECT_TRUE(pipeline.ok()) << pipeline.status();
      request.pipelines.push_back(*std::move(pipeline));
    }
    return request;
  };
  const serving::SessionReport first =
      manager.RunSession(make_request("writer", 0));
  ASSERT_TRUE(first.status.ok()) << first.status;
  // The first session can reuse its own earlier pipelines' artifacts but
  // nothing from another tenant.
  EXPECT_EQ(first.cross_session_loads, 0);

  const serving::SessionReport second =
      manager.RunSession(make_request("reader", 1));
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_GT(second.reuse_loads, 0);
  EXPECT_GT(second.cross_session_loads, 0);
  // Every load the second session planned targets an artifact first
  // materialized by "writer" or by itself.
  EXPECT_LE(second.cross_session_loads, second.reuse_loads);

  const serving::SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_completed, 2);
  EXPECT_EQ(stats.cross_session_loads, second.cross_session_loads);
  EXPECT_EQ(manager.runtime().monitor().num_cross_session_loads(),
            stats.cross_session_loads);
  EXPECT_EQ(manager.runtime().monitor().num_reuse_loads(),
            stats.reuse_loads);
}

// ---------------------------------------------------------------------------
// Admission control: at most max_in_flight_sessions run concurrently,
// the rest queue FIFO and still complete.

TEST(ServingTest, AdmissionGateBoundsInFlightSessions) {
  serving::ServingOptions options = BaseOptions();
  options.max_in_flight_sessions = 2;
  // Hold each admitted session briefly so later arrivals observably
  // queue behind the gate.
  options.make_method = [method = options.method](core::Runtime* runtime) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    return std::make_unique<core::HyppoMethod>(runtime, method);
  };
  serving::SessionManager manager(options);
  RegisterServingDataset(&manager.runtime());

  std::vector<serving::SessionRequest> requests;
  for (int s = 0; s < 6; ++s) {
    serving::SessionRequest request;
    request.session_id = "queued-" + std::to_string(s);
    auto pipeline = ServePipeline(s, 0);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    request.pipelines.push_back(*std::move(pipeline));
    requests.push_back(std::move(request));
  }
  const std::vector<serving::SessionReport> reports =
      manager.RunSessions(requests);
  double queue_seconds = 0.0;
  for (const serving::SessionReport& report : reports) {
    ASSERT_TRUE(report.status.ok()) << report.status;
    queue_seconds += report.queue_seconds;
  }
  const serving::SessionManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.sessions_completed, 6);
  EXPECT_LE(stats.max_observed_in_flight, 2);
  EXPECT_GE(stats.sessions_queued, 1);
  EXPECT_GT(queue_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Stale-snapshot regression: a plan made before compaction must still
// execute correctly after Compact rewrote the history under it, and the
// post-run history must verify clean.

TEST(ServingTest, PlanFromPreCompactionSnapshotExecutesClean) {
  serving::ServingOptions options = BaseOptions();
  // Small growth bound: each pipeline adds ~12 artifacts, so the second
  // session's executions force Pareto compaction.
  options.runtime.history_max_artifacts = 18;
  serving::SessionManager manager(options);
  RegisterServingDataset(&manager.runtime());

  // Warm the history, then plan one pipeline against this snapshot.
  serving::SessionRequest warm;
  warm.session_id = "warm";
  for (int p = 0; p < 2; ++p) {
    auto pipeline = ServePipeline(0, p);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    warm.pipelines.push_back(*std::move(pipeline));
  }
  ASSERT_TRUE(manager.RunSession(warm).status.ok());

  core::HyppoMethod method(&manager.runtime(), options.method);
  auto stale_pipeline = ServePipeline(0, 5);
  ASSERT_TRUE(stale_pipeline.ok()) << stale_pipeline.status();
  auto planned = method.PlanPipeline(*stale_pipeline);
  ASSERT_TRUE(planned.ok()) << planned.status();

  // Churn the catalog from another tenant until compaction fires.
  serving::SessionRequest churn;
  churn.session_id = "churn";
  for (int p = 2; p < 5; ++p) {
    auto pipeline = ServePipeline(1, p);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    churn.pipelines.push_back(*std::move(pipeline));
  }
  ASSERT_TRUE(manager.RunSession(churn).status.ok());
  ASSERT_GT(manager.runtime().monitor().num_history_compacted(), 0)
      << "test premise broken: compaction never fired";

  // The stale plan may load artifacts compaction evicted; execution must
  // self-heal (degrade + re-plan) rather than corrupt or fail.
  auto record = manager.runtime().ExecuteAndRecord(
      *stale_pipeline, planned->aug, planned->plan, method.MakeReplanner());
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_TRUE(VerifyManagerHistory(manager).ok());
}

// ---------------------------------------------------------------------------
// One live manager per store_dir: a second manager (or any second
// runtime) opening the same durable directory fails fast with a clear
// diagnostic instead of corrupting the first tenant's artifacts.

TEST(ServingTest, SecondManagerOnSameStoreDirFailsFast) {
  const fs::path dir = fs::temp_directory_path() / "hyppo_serving_lock";
  fs::remove_all(dir);
  serving::ServingOptions options = BaseOptions();
  options.runtime.store_dir = dir.string();

  serving::SessionManager first(options);
  ASSERT_TRUE(first.session_status().ok()) << first.session_status();

  serving::SessionManager second(options);
  EXPECT_FALSE(second.session_status().ok());
  EXPECT_TRUE(second.session_status().IsFailedPrecondition())
      << second.session_status();
  EXPECT_NE(second.session_status().ToString().find("locked"),
            std::string::npos)
      << second.session_status();

  // Sessions submitted to the locked-out manager fail fast with the
  // same status instead of hanging or touching the store.
  serving::SessionRequest request;
  request.session_id = "locked-out";
  auto pipeline = ServePipeline(0, 0);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  request.pipelines.push_back(*std::move(pipeline));
  const serving::SessionReport report = second.RunSession(request);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.pipelines_completed, 0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Scenario plumbing: config.sessions > 1 drives the generated sequence
// through the serving layer (round-robin partition, original-order
// reassembly) and surfaces the reuse counters in SequenceResult.

TEST(ServingTest, IterativeScenarioDrivesConcurrentSessions) {
  workload::ScenarioConfig config;
  config.num_pipelines = 8;
  config.budget_factor = 0.5;
  config.seed = 5;
  config.sessions = 2;
  auto result =
      workload::RunIterativeScenario(workload::MakeHyppoFactory(), config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->sessions, 2);
  EXPECT_EQ(result->per_pipeline_seconds.size(),
            static_cast<size_t>(config.num_pipelines));
  EXPECT_GT(result->cumulative_seconds, 0.0);
  EXPECT_GT(result->reuse_loads, 0);
  EXPECT_GE(result->cross_session_loads, 0);
}

// The lock is released with the owning manager: reopening afterwards
// restores the previous session's materializations.

TEST(ServingTest, StoreDirReopensAfterOwnerCloses) {
  const fs::path dir = fs::temp_directory_path() / "hyppo_serving_reopen";
  fs::remove_all(dir);
  serving::ServingOptions options = BaseOptions();
  options.runtime.store_dir = dir.string();
  {
    serving::SessionManager manager(options);
    ASSERT_TRUE(manager.session_status().ok()) << manager.session_status();
    RegisterServingDataset(&manager.runtime());
    serving::SessionRequest request;
    request.session_id = "writer";
    auto pipeline = ServePipeline(0, 0);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    request.pipelines.push_back(*std::move(pipeline));
    const auto reports = manager.RunSessions({request});
    ASSERT_TRUE(reports[0].status.ok()) << reports[0].status;
  }
  serving::SessionManager reopened(options);
  ASSERT_TRUE(reopened.session_status().ok()) << reopened.session_status();
  EXPECT_FALSE(
      reopened.runtime().history().MaterializedArtifacts().empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hyppo
