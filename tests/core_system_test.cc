#include <gtest/gtest.h>

#include <cmath>

#include "core/hyppo.h"
#include "core/pipeline_builder.h"
#include "hypergraph/algorithms.h"
#include "workload/datagen.h"

namespace hyppo::core {
namespace {

// Fig. 1(a)-style pipeline over a registered synthetic dataset.
Result<Pipeline> BuildTestPipeline(const std::string& id,
                                   const std::string& scaler_impl,
                                   const std::string& model_impl,
                                   int64_t max_depth = 5) {
  PipelineBuilder builder(id);
  HYPPO_ASSIGN_OR_RETURN(NodeId data, builder.LoadDataset("unit", 600, 6));
  HYPPO_ASSIGN_OR_RETURN(auto split, builder.Split(data));
  HYPPO_ASSIGN_OR_RETURN(NodeId scaler,
                         builder.Fit("StandardScaler", scaler_impl,
                                     split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId train_s,
                         builder.Transform(scaler, split.first));
  HYPPO_ASSIGN_OR_RETURN(NodeId test_s,
                         builder.Transform(scaler, split.second));
  ml::Config model_config;
  model_config.SetInt("max_depth", max_depth);
  HYPPO_ASSIGN_OR_RETURN(
      NodeId model, builder.Fit("DecisionTreeClassifier", model_impl, train_s,
                                model_config));
  HYPPO_ASSIGN_OR_RETURN(NodeId preds, builder.Predict(model, test_s));
  HYPPO_RETURN_NOT_OK(builder.Evaluate(preds, test_s, "accuracy").status());
  return std::move(builder).Build();
}

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RuntimeOptions options;
    options.storage_budget_bytes = 1 << 20;
    runtime_ = std::make_unique<Runtime>(options);
    runtime_->RegisterDatasetGenerator(
        "unit", []() { return workload::GenerateHiggs(600, 6, 5); });
    method_ = std::make_unique<HyppoMethod>(runtime_.get());
  }

  Runtime::ExecutionRecord RunOnce(const Pipeline& pipeline) {
    auto planned = method_->PlanPipeline(pipeline);
    planned.status().Abort("plan");
    auto record =
        runtime_->ExecuteAndRecord(pipeline, planned->aug, planned->plan);
    record.status().Abort("execute");
    method_->AfterExecution(pipeline, *planned, *record).Abort("materialize");
    last_plan_ = planned->plan;
    last_aug_ = std::move(planned->aug);
    return *record;
  }

  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<HyppoMethod> method_;
  Plan last_plan_;
  Augmentation last_aug_;
};

TEST_F(SystemTest, ColdAugmentationContainsDictionaryAlternatives) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  auto planned = method_->PlanPipeline(pipeline);
  ASSERT_TRUE(planned.ok()) << planned.status();
  // The augmentation holds parallel edges for tfl.StandardScaler and
  // lgb.DecisionTreeClassifier etc.
  int alternatives = 0;
  for (EdgeId e : planned->aug.graph.hypergraph().LiveEdges()) {
    const TaskInfo& task = planned->aug.graph.task(e);
    if (task.impl == "tfl.StandardScaler" ||
        task.impl == "lgb.DecisionTreeClassifier" ||
        task.impl == "tfl.TrainTestSplit") {
      ++alternatives;
    }
  }
  EXPECT_GE(alternatives, 4);  // fit+2 transforms, fit+predict, split
  // Every pipeline edge is a "new task" on a cold history.
  EXPECT_GT(planned->aug.new_tasks.size(), 0u);
  // P is a subhypergraph of A: all pipeline artifacts present.
  for (NodeId v = 1; v < pipeline.graph.num_artifacts(); ++v) {
    EXPECT_TRUE(
        planned->aug.graph.HasArtifact(pipeline.graph.artifact(v).name));
  }
}

TEST_F(SystemTest, ExecutionProducesCorrectPayloads) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  Runtime::ExecutionRecord record = RunOnce(pipeline);
  EXPECT_GT(record.seconds, 0.0);
  // The target (accuracy value) is a plausible accuracy.
  const std::string target_name =
      pipeline.graph.artifact(pipeline.targets[0]).name;
  auto it = record.payloads_by_name.find(target_name);
  ASSERT_NE(it, record.payloads_by_name.end());
  const double* accuracy = std::get_if<double>(&it->second);
  ASSERT_NE(accuracy, nullptr);
  EXPECT_GE(*accuracy, 0.5);
  EXPECT_LE(*accuracy, 1.0);
}

TEST_F(SystemTest, HistoryRecordsArtifactsAndTasks) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  RunOnce(pipeline);
  const History& history = runtime_->history();
  // 9 artifacts: data, train, test, scaler, train_s, test_s, model,
  // preds, score.
  EXPECT_EQ(history.num_artifacts(), 9);
  EXPECT_GE(history.num_tasks(), 7);
  // Observed sizes are real: train is larger than the op-state.
  Result<NodeId> raw = history.graph().FindArtifact(
      pipeline.graph.artifact(1).name);
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(history.graph().artifact(*raw).size_bytes, 0);
}

TEST_F(SystemTest, SecondRunReusesAndIsCheaper) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  Runtime::ExecutionRecord first = RunOnce(pipeline);
  const size_t first_tasks = last_plan_.edges.size();
  Runtime::ExecutionRecord second = RunOnce(pipeline);
  // Identical pipeline: everything needed is materialized or trivially
  // derivable — far fewer tasks, and loads instead of computes.
  EXPECT_LT(last_plan_.edges.size(), first_tasks);
  EXPECT_LT(second.seconds, first.seconds);
}

TEST_F(SystemTest, EquivalentImplPipelineReusesArtifacts) {
  Pipeline v1 = *BuildTestPipeline("p1", "skl.StandardScaler",
                                   "skl.DecisionTreeClassifier");
  RunOnce(v1);
  // Same logical pipeline with the tfl scaler: artifacts are equivalent,
  // so the plan should reuse materialized results rather than refit.
  Pipeline v2 = *BuildTestPipeline("p2", "tfl.StandardScaler",
                                   "skl.DecisionTreeClassifier");
  RunOnce(v2);
  int scaler_fits = 0;
  for (EdgeId e : last_plan_.edges) {
    const TaskInfo& task = last_aug_.graph.task(e);
    if (task.logical_op == "StandardScaler" && task.type == TaskType::kFit) {
      ++scaler_fits;
    }
  }
  EXPECT_EQ(scaler_fits, 0);
}

TEST_F(SystemTest, MaterializationRespectsBudget) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  RunOnce(pipeline);
  EXPECT_LE(runtime_->history().MaterializedBytes(),
            runtime_->options().storage_budget_bytes);
  EXPECT_GT(runtime_->history().MaterializedArtifacts().size(), 0u);
  EXPECT_LE(runtime_->store().used_bytes(),
            runtime_->options().storage_budget_bytes);
}

TEST_F(SystemTest, RetrievalPlansDeriveRecordedArtifacts) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  RunOnce(pipeline);
  // Retrieve the model state recorded in the history.
  const History& history = runtime_->history();
  std::string model_name;
  for (NodeId v = 1; v < history.graph().num_artifacts(); ++v) {
    if (history.graph().artifact(v).kind == ArtifactKind::kOpState &&
        history.graph().artifact(v).display.find("DecisionTree") !=
            std::string::npos) {
      model_name = history.graph().artifact(v).name;
    }
  }
  ASSERT_FALSE(model_name.empty());
  auto planned = method_->PlanRetrieval({model_name});
  ASSERT_TRUE(planned.ok()) << planned.status();
  auto record = runtime_->ExecutePlanOnly(planned->aug, planned->plan);
  ASSERT_TRUE(record.ok()) << record.status();
  auto it = record->payloads_by_name.find(model_name);
  ASSERT_NE(it, record->payloads_by_name.end());
  EXPECT_NE(std::get_if<ml::OpStatePtr>(&it->second), nullptr);
}

TEST_F(SystemTest, SimulationModeChargesEstimates) {
  RuntimeOptions options;
  options.storage_budget_bytes = 1 << 20;
  options.simulate = true;
  Runtime sim_runtime(options);
  HyppoMethod sim_method(&sim_runtime);
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  auto planned = sim_method.PlanPipeline(pipeline);
  ASSERT_TRUE(planned.ok());
  auto record =
      sim_runtime.ExecuteAndRecord(pipeline, planned->aug, planned->plan);
  ASSERT_TRUE(record.ok()) << record.status();
  // Simulated charge equals the plan's estimated seconds.
  EXPECT_NEAR(record->seconds, planned->plan.seconds, 1e-9);
  // Payloads are placeholders.
  for (const auto& [name, payload] : record->payloads_by_name) {
    EXPECT_NE(std::get_if<std::monostate>(&payload), nullptr);
  }
  // And the run is deterministic.
  Runtime sim_runtime2(options);
  HyppoMethod sim_method2(&sim_runtime2);
  auto planned2 = sim_method2.PlanPipeline(pipeline);
  auto record2 =
      sim_runtime2.ExecuteAndRecord(pipeline, planned2->aug, planned2->plan);
  EXPECT_DOUBLE_EQ(record->seconds, record2->seconds);
}

TEST_F(SystemTest, PlanExecutionOrderIsTopological) {
  Pipeline pipeline =
      *BuildTestPipeline("p1", "skl.StandardScaler",
                         "skl.DecisionTreeClassifier");
  auto planned = method_->PlanPipeline(pipeline);
  ASSERT_TRUE(planned.ok());
  auto order = BTopologicalEdgeOrder(planned->aug.graph.hypergraph(),
                                     planned->plan.edges,
                                     {planned->aug.graph.source()});
  ASSERT_TRUE(order.ok()) << order.status();
  EXPECT_EQ(order->size(), planned->plan.edges.size());
}

// ---------------------------------------------------------------------------
// HyppoSystem facade.

TEST(HyppoSystemTest, ParseRunRerun) {
  HyppoSystem system;
  auto higgs = workload::GenerateHiggs(500, 6, 77);
  ASSERT_TRUE(higgs.ok());
  system.RegisterDataset("mini", *higgs);
  const char* code = R"(
data        = load("mini", rows=500, cols=6)
train, test = sk.TrainTestSplit.split(data)
imp         = sk.SimpleImputer.fit(train, strategy=mean)
train_i     = imp.transform(train)
test_i      = imp.transform(test)
model       = sk.DecisionTreeClassifier.fit(train_i, max_depth=4)
preds       = model.predict(test_i)
score       = evaluate(preds, test_i, metric="accuracy")
)";
  auto first = system.RunCode(code, "run1");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->target_payloads.size(), 1u);
  auto second = system.RunCode(code, "run2");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_LT(second->plan.edges.size(), first->plan.edges.size());
  // The recomputed metric matches (deterministic reuse).
  const double a = std::get<double>(first->target_payloads.begin()->second);
  const double b = std::get<double>(second->target_payloads.begin()->second);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(HyppoSystemTest, ParseErrorsSurface) {
  HyppoSystem system;
  EXPECT_TRUE(system.RunCode("nonsense", "x").status().IsParseError());
}

}  // namespace
}  // namespace hyppo::core
