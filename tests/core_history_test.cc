#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/history.h"
#include "core/materializer.h"
#include "core/monitor.h"

namespace hyppo::core {
namespace {

ArtifactInfo MakeArtifact(const std::string& name, ArtifactKind kind,
                          int64_t size_bytes) {
  ArtifactInfo info;
  info.name = name;
  info.display = name;
  info.kind = kind;
  info.size_bytes = size_bytes;
  info.rows = size_bytes / 8;
  info.cols = 1;
  return info;
}

TaskInfo MakeTask(const std::string& lop, TaskType type,
                  const std::string& impl) {
  TaskInfo task;
  task.logical_op = lop;
  task.type = type;
  task.impl = impl;
  return task;
}

TEST(HistoryTest, ObserveDedupsByName) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 100));
  const NodeId again =
      history.Observe(MakeArtifact("a", ArtifactKind::kData, 200));
  EXPECT_EQ(a, again);
  // Metadata refreshed with the newer observation.
  EXPECT_EQ(history.graph().artifact(a).size_bytes, 200);
  EXPECT_EQ(history.num_artifacts(), 1);
}

TEST(HistoryTest, ObserveTaskDedupsBySignature) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 100));
  const NodeId b = history.Observe(MakeArtifact("b", ArtifactKind::kData, 100));
  const TaskInfo task = MakeTask("Op", TaskType::kFit, "skl.Op");
  const EdgeId e1 = *history.ObserveTask(task, {a}, {b}, 1.0);
  const EdgeId e2 = *history.ObserveTask(task, {a}, {b}, 3.0);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(history.num_tasks(), 1);
  // Durations averaged.
  EXPECT_DOUBLE_EQ(history.ObservedTaskSeconds(e1, -1.0), 2.0);
  // A different impl is a different (parallel, equivalent) edge.
  const EdgeId e3 =
      *history.ObserveTask(MakeTask("Op", TaskType::kFit, "tfl.Op"), {a}, {b},
                           0.5);
  EXPECT_NE(e3, e1);
  EXPECT_EQ(history.num_tasks(), 2);
}

TEST(HistoryTest, NegativeSecondsRecordStructureOnly) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 8));
  const NodeId b = history.Observe(MakeArtifact("b", ArtifactKind::kData, 8));
  const EdgeId e = *history.ObserveTask(
      MakeTask("Op", TaskType::kFit, "skl.Op"), {a}, {b}, -1.0);
  EXPECT_FALSE(history.HasTaskObservation(e));
  EXPECT_DOUBLE_EQ(history.ObservedTaskSeconds(e, 9.0), 9.0);
}

TEST(HistoryTest, MaterializeAddsLoadEdgeEvictRemovesIt) {
  History history;
  const NodeId a =
      history.Observe(MakeArtifact("a", ArtifactKind::kOpState, 64));
  EXPECT_FALSE(history.IsMaterialized(a));
  ASSERT_TRUE(history.MarkMaterialized(a).ok());
  EXPECT_TRUE(history.IsMaterialized(a));
  // A live load edge from s exists.
  const EdgeId load = history.record(a).load_edge;
  ASSERT_NE(load, kInvalidEdge);
  EXPECT_EQ(history.graph().task(load).type, TaskType::kLoad);
  EXPECT_EQ(history.MaterializedArtifacts(), (std::vector<NodeId>{a}));
  EXPECT_EQ(history.MaterializedBytes(), 64);

  ASSERT_TRUE(history.EvictMaterialized(a).ok());
  EXPECT_FALSE(history.IsMaterialized(a));
  // The node itself and its version counter survive (paper §IV-H).
  EXPECT_EQ(history.num_artifacts(), 1);
  EXPECT_EQ(history.record(a).version, 2);
  EXPECT_TRUE(history.graph().hypergraph().bstar(a).empty());
  EXPECT_TRUE(history.EvictMaterialized(a).IsFailedPrecondition());
}

TEST(HistoryTest, SourceDataNotEvictable) {
  History history;
  const NodeId raw = history.Observe(MakeArtifact("raw", ArtifactKind::kRaw,
                                                  4096));
  ASSERT_TRUE(history.RegisterSourceData(raw).ok());
  EXPECT_TRUE(history.IsMaterialized(raw));
  EXPECT_TRUE(history.EvictMaterialized(raw).IsFailedPrecondition());
  // Raw data is excluded from the materialized-artifact accounting.
  EXPECT_TRUE(history.MaterializedArtifacts().empty());
}

TEST(HistoryTest, AccessAndComputeStats) {
  History history;
  const NodeId a = history.Observe(MakeArtifact("a", ArtifactKind::kData, 8));
  history.RecordAccess(a, 1.5);
  history.RecordAccess(a, 2.5);
  EXPECT_EQ(history.record(a).access_count, 2);
  EXPECT_DOUBLE_EQ(history.record(a).last_access_seconds, 2.5);
  history.RecordComputeSeconds(a, 2.0);
  history.RecordComputeSeconds(a, 4.0);
  EXPECT_DOUBLE_EQ(history.record(a).compute_seconds, 3.0);
}

// ---------------------------------------------------------------------------
// Cost estimator.

TEST(CostEstimatorTest, FallsBackToCostHint) {
  CostEstimator estimator;
  TaskInfo task = MakeTask("StandardScaler", TaskType::kFit,
                           "skl.StandardScaler");
  const double estimate = estimator.EstimateTaskSeconds(task, 10000, 30);
  auto op = ml::OperatorRegistry::Global().Get("skl.StandardScaler");
  const double hint =
      (*op)->CostHint(ml::MlTask::kFit, 10000, 30, task.config);
  EXPECT_DOUBLE_EQ(estimate, hint);
}

TEST(CostEstimatorTest, LearnsFromObservations) {
  CostEstimator estimator;
  TaskInfo task = MakeTask("StandardScaler", TaskType::kFit,
                           "skl.StandardScaler");
  estimator.Observe(task.impl, task.type, 10000, 30, 0.5);
  estimator.Observe(task.impl, task.type, 10000, 30, 1.5);
  // Same bucket: the mean observation wins over the formula.
  EXPECT_DOUBLE_EQ(estimator.EstimateTaskSeconds(task, 10000, 30), 1.0);
  EXPECT_EQ(estimator.num_observations(), 2);
}

TEST(CostEstimatorTest, ScalesAcrossBuckets) {
  CostEstimator estimator;
  TaskInfo task = MakeTask("StandardScaler", TaskType::kFit,
                           "skl.StandardScaler");
  estimator.Observe(task.impl, task.type, 1000, 10, 0.01);
  // 8x the cells: nearest-bucket linear scaling predicts ~0.08.
  const double estimate = estimator.EstimateTaskSeconds(task, 8000, 10);
  EXPECT_NEAR(estimate, 0.08, 0.02);
}

TEST(CostEstimatorTest, UnknownImplGenericGuess) {
  CostEstimator estimator;
  TaskInfo task = MakeTask("Custom", TaskType::kFit, "user.Custom");
  EXPECT_GT(estimator.EstimateTaskSeconds(task, 1000, 10), 0.0);
}

TEST(PricingModelTest, PaperFormula) {
  PricingModel pricing;
  // price = cet x 0.00018 + B_GB x 0.023.
  EXPECT_NEAR(pricing.ExperimentPrice(1000.0, 2'000'000'000),
              1000.0 * 0.00018 + 2.0 * 0.023, 1e-12);
  EXPECT_NEAR(pricing.TaskPrice(10.0, 500'000'000),
              10.0 * 0.00018 + 0.5 * 0.023, 1e-12);
}

// ---------------------------------------------------------------------------
// Monitor.

TEST(MonitorTest, AggregatesAndFeedsEstimator) {
  CostEstimator estimator;
  Monitor monitor(&estimator);
  monitor.RecordTask("skl.PCA", TaskType::kFit, 1000, 10, 0.25);
  monitor.RecordTask("skl.PCA", TaskType::kFit, 1000, 10, 0.75);
  monitor.RecordTask("skl.PCA", TaskType::kTransform, 1000, 10, 0.1);
  EXPECT_EQ(monitor.num_task_records(), 3);
  EXPECT_DOUBLE_EQ(monitor.by_task_type().at(TaskType::kFit).MeanSeconds(),
                   0.5);
  EXPECT_EQ(estimator.num_observations(), 3);
  monitor.RecordArtifact(ArtifactKind::kOpState, 512, 0.25);
  EXPECT_DOUBLE_EQ(
      monitor.by_artifact_kind().at(ArtifactKind::kOpState).MeanBytes(),
      512.0);
}

TEST(MonitorTest, LoadTasksNotFedToEstimator) {
  CostEstimator estimator;
  Monitor monitor(&estimator);
  monitor.RecordTask("", TaskType::kLoad, 1000, 10, 0.1);
  EXPECT_EQ(estimator.num_observations(), 0);
  EXPECT_EQ(monitor.num_task_records(), 1);
}

// ---------------------------------------------------------------------------
// Materializer.

class MaterializerTest : public ::testing::Test {
 protected:
  MaterializerTest()
      : estimator_(),
        augmenter_(&dictionary_, &estimator_),
        materializer_(&augmenter_) {}

  // History: s -> raw -load-> ; raw -> mid -> deep, with stats.
  void BuildHistory() {
    raw_ = history_.Observe(MakeArtifact("raw", ArtifactKind::kRaw, 80000));
    history_.RegisterSourceData(raw_).ValueOrDie();
    mid_ = history_.Observe(MakeArtifact("mid", ArtifactKind::kTrain, 60000));
    deep_ = history_.Observe(
        MakeArtifact("deep", ArtifactKind::kOpState, 4000));
    *history_.ObserveTask(MakeTask("A", TaskType::kTransform, "skl.A"),
                          {raw_}, {mid_}, 2.0);
    *history_.ObserveTask(MakeTask("B", TaskType::kFit, "skl.B"), {mid_},
                          {deep_}, 5.0);
    history_.RecordComputeSeconds(mid_, 2.0);
    history_.RecordComputeSeconds(deep_, 5.0);
    history_.RecordAccess(mid_, 1.0);
    history_.RecordAccess(deep_, 1.0);
    history_.RecordAccess(deep_, 2.0);
  }

  Dictionary dictionary_;
  CostEstimator estimator_;
  Augmenter augmenter_;
  Materializer materializer_;
  History history_;
  NodeId raw_ = kInvalidNode;
  NodeId mid_ = kInvalidNode;
  NodeId deep_ = kInvalidNode;
};

TEST_F(MaterializerTest, RespectsBudget) {
  BuildHistory();
  Materializer::Options options;
  options.budget_bytes = 5000;  // only `deep` fits
  Materializer::Decision decision =
      materializer_.Decide(history_, {"mid", "deep"}, options);
  EXPECT_EQ(decision.to_store, (std::vector<NodeId>{deep_}));
  EXPECT_LE(decision.selected_bytes, options.budget_bytes);
}

TEST_F(MaterializerTest, SpfPrefersHighGainSmallLoad) {
  BuildHistory();
  Materializer::Options options;
  options.budget_bytes = 100000;  // everything fits
  // deep: freq 2, compute 5s, tiny load => dominant gain.
  const double gain_deep = materializer_.Gain(history_, deep_, options);
  const double gain_mid = materializer_.Gain(history_, mid_, options);
  EXPECT_GT(gain_deep, gain_mid);
  Materializer::Decision decision =
      materializer_.Decide(history_, {"mid", "deep"}, options);
  EXPECT_EQ(decision.to_store.size(), 2u);
}

TEST_F(MaterializerTest, UnstorablePayloadsSkipped) {
  BuildHistory();
  Materializer::Options options;
  options.budget_bytes = 100000;
  // Only `mid` has an available payload; `deep` cannot be stored.
  Materializer::Decision decision =
      materializer_.Decide(history_, {"mid"}, options);
  for (NodeId v : decision.to_store) {
    EXPECT_NE(v, deep_);
  }
}

TEST_F(MaterializerTest, EvictsWhenBudgetShrinks) {
  BuildHistory();
  storage::InMemoryArtifactStore store;
  Materializer::Options big;
  big.budget_bytes = 100000;
  Materializer::Decision decision =
      materializer_.Decide(history_, {"mid", "deep"}, big);
  std::map<std::string, ArtifactPayload> available = {
      {"mid", ArtifactPayload(std::monostate{})},
      {"deep", ArtifactPayload(std::monostate{})}};
  ASSERT_TRUE(
      Materializer::Apply(history_, store, decision, available).ok());
  EXPECT_EQ(history_.MaterializedArtifacts().size(), 2u);
  EXPECT_EQ(store.num_entries(), 2u);

  Materializer::Options small;
  small.budget_bytes = 5000;
  decision = materializer_.Decide(history_, {}, small);
  ASSERT_TRUE(Materializer::Apply(history_, store, decision, {}).ok());
  EXPECT_EQ(history_.MaterializedArtifacts(), (std::vector<NodeId>{deep_}));
  EXPECT_EQ(store.num_entries(), 1u);
}

TEST_F(MaterializerTest, PolicyOrderingsDiffer) {
  BuildHistory();
  // Give mid the higher access frequency (3 vs deep's 2) so LFU and SFF
  // disagree: LFU keeps the hot artifact, SFF keeps the small one.
  history_.RecordAccess(mid_, 3.0);
  history_.RecordAccess(mid_, 4.0);
  Materializer::Options lfu;
  lfu.budget_bytes = 60000;  // not both (4000 + 60000 > 60000)
  lfu.policy = Materializer::Policy::kLfu;
  Materializer::Decision lfu_decision =
      materializer_.Decide(history_, {"mid", "deep"}, lfu);
  EXPECT_EQ(lfu_decision.to_store, (std::vector<NodeId>{mid_}));

  // Smaller-files-first keeps the *smallest* artifacts: deep (4000)
  // ranks first, then mid (60000) no longer fits.
  Materializer::Options sff;
  sff.budget_bytes = 60000;
  sff.policy = Materializer::Policy::kSff;
  Materializer::Decision sff_decision =
      materializer_.Decide(history_, {"mid", "deep"}, sff);
  EXPECT_EQ(sff_decision.to_store, (std::vector<NodeId>{deep_}));
}

TEST_F(MaterializerTest, RawDataNeverCandidate) {
  BuildHistory();
  Materializer::Options options;
  options.budget_bytes = 1 << 30;
  Materializer::Decision decision =
      materializer_.Decide(history_, {"raw", "mid", "deep"}, options);
  for (NodeId v : decision.to_store) {
    EXPECT_NE(v, raw_);
  }
}

TEST(ArtifactStoreTest, PutGetEvictAccounting) {
  storage::InMemoryArtifactStore store;
  ASSERT_TRUE(store.Put("k", ArtifactPayload(1.5), 100).ok());
  EXPECT_TRUE(store.Contains("k"));
  EXPECT_EQ(store.used_bytes(), 100);
  auto payload = store.Get("k");
  ASSERT_TRUE(payload.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(*payload), 1.5);
  // Overwrite adjusts accounting.
  ASSERT_TRUE(store.Put("k", ArtifactPayload(2.0), 40).ok());
  EXPECT_EQ(store.used_bytes(), 40);
  ASSERT_TRUE(store.Evict("k").ok());
  EXPECT_EQ(store.used_bytes(), 0);
  EXPECT_TRUE(store.Get("k").status().IsNotFound());
  EXPECT_TRUE(store.Evict("k").IsNotFound());
}

TEST(StorageTierTest, LoadTimeModel) {
  storage::StorageTier local = storage::StorageTier::Local();
  EXPECT_NEAR(local.LoadSeconds(400'000'000), 0.002 + 1.0, 1e-9);
  // Remote is slower than local for the same payload.
  storage::StorageTier remote = storage::StorageTier::Remote();
  EXPECT_GT(remote.LoadSeconds(1 << 20), local.LoadSeconds(1 << 20));
}

}  // namespace
}  // namespace hyppo::core
